//! The super-V_th (performance-driven) scaling flow — the paper's
//! Fig. 1(c) iterative process, reproduced as a deterministic algorithm:
//!
//! 1. `L_poly`, `T_ox` and `V_dd` come from the roadmap (published
//!    industry cadence).
//! 2. For a candidate substrate doping `N_sub`, the peak halo doping
//!    `N_p,halo` is solved so the short-channel saturation threshold
//!    equals the long-channel threshold — the paper's
//!    `−ΔV_th,SCE = ΔV_th,halo` flatness condition ("V_th remains flat as
//!    a function of both L_poly and V_ds").
//! 3. `N_sub` is then solved so the off-current meets the node's leakage
//!    budget exactly.
//!
//! Delay optimality under the leakage constraint is implicit: off-current
//! is monotone in `V_th` and delay improves as `V_th` falls, so the
//! delay-optimal device under `I_off ≤ I_max` sits exactly at the budget,
//! which is where the search lands.

use std::cell::Cell;

use subvt_engine::trace;
use subvt_model::{DeviceModel, ModelError};
use subvt_physics::device::{DeviceGeometry, DeviceKind, DeviceParams};
use subvt_physics::electrostatics::{long_channel_vth, oxide_capacitance};
use subvt_physics::math::bisect;
use subvt_units::{Nanometers, PerCubicCentimeter, Temperature, Volts};

use crate::roadmap::TechNode;
use crate::strategy::{DesignError, NodeDesign, ScalingStrategy};

/// Reference geometry ratios at the 90 nm node; everything scales with
/// the 30 %-per-generation dimension factor (the paper's "all physical
/// dimensions other than T_ox scale in proportion to L_poly").
const L_OVERLAP_90NM: f64 = 10.0;
const X_J_90NM: f64 = 30.0;
const HALO_SIGMA_90NM: f64 = 7.5;

/// Source/drain doping, fixed across generations.
const N_SD: PerCubicCentimeter = PerCubicCentimeter::new(1.0e20);

/// The super-V_th scaling strategy (paper §2.2, producing Table 2).
///
/// The default instance reproduces the paper exactly; the fields exist
/// for ablation studies (e.g. "what if the oxide had kept scaling at the
/// full 30 %/generation?" or "what does a stricter LSTP budget do?").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperVthStrategy {
    /// Per-generation oxide shrink rate. The paper's observed value —
    /// and the root of its sub-V_th scaling problem — is 0.10.
    pub t_ox_shrink_rate: f64,
    /// Leakage budget at the 90 nm node, pA/µm (paper: 100).
    pub i_leak_90nm_pa: f64,
    /// Per-generation leakage-budget growth factor (paper: 1.25).
    pub i_leak_growth: f64,
}

impl Default for SuperVthStrategy {
    fn default() -> Self {
        Self {
            t_ox_shrink_rate: 0.10,
            i_leak_90nm_pa: 100.0,
            i_leak_growth: 1.25,
        }
    }
}

impl SuperVthStrategy {
    /// Hypothetical variant where `T_ox` scales at the full dimensional
    /// cadence (30 %/generation) — the ablation for the paper's central
    /// claim that *slow oxide scaling* drives S_S degradation.
    pub fn with_ideal_oxide_scaling() -> Self {
        Self {
            t_ox_shrink_rate: 0.30,
            ..Self::default()
        }
    }

    /// Leakage budget at a node under this strategy's schedule.
    pub fn leakage_budget(&self, node: TechNode) -> f64 {
        self.i_leak_90nm_pa * 1.0e-12 * self.i_leak_growth.powi(node.generation() as i32)
    }

    /// Device geometry at a node under performance-driven scaling.
    pub fn geometry(&self, node: TechNode) -> DeviceGeometry {
        let s = node.dimension_scale();
        DeviceGeometry {
            l_poly: node.l_poly_supervth(),
            t_ox: node.t_ox_at_rate(self.t_ox_shrink_rate),
            l_overlap: Nanometers::new(L_OVERLAP_90NM * s),
            x_j: Nanometers::new(X_J_90NM * s),
            halo_sigma: Nanometers::new(HALO_SIGMA_90NM * s),
        }
    }

    fn template(&self, node: TechNode, kind: DeviceKind) -> DeviceParams {
        DeviceParams {
            kind,
            geometry: self.geometry(node),
            n_sub: PerCubicCentimeter::new(1.0e18),
            n_p_halo: PerCubicCentimeter::new(1.0e17),
            n_sd: N_SD,
            v_dd: node.v_dd_nominal(),
            temperature: Temperature::room(),
        }
    }

    /// Solves the halo peak that makes `V_th,sat` of the short-channel
    /// device equal the long-channel threshold of the bare substrate —
    /// the flatness condition of Fig. 1(c).
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] if no halo in `[1e14, 8e19]` can flatten
    /// the roll-off (extremely light substrates at very short channels).
    pub fn halo_for_flat_vth(
        template: &DeviceParams,
        node: TechNode,
    ) -> Result<PerCubicCentimeter, DesignError> {
        Self::halo_for_flat_vth_with(template, node, subvt_model::analytic())
    }

    /// Like [`Self::halo_for_flat_vth`] but evaluates candidates through
    /// an explicit backend.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::DopingSearch`] when the bracket fails and
    /// [`DesignError::Model`] when the backend fails on a probe (a probe
    /// failure poisons the whole search — the bisection trajectory is no
    /// longer trustworthy).
    pub fn halo_for_flat_vth_with(
        template: &DeviceParams,
        node: TechNode,
        model: &dyn DeviceModel,
    ) -> Result<PerCubicCentimeter, DesignError> {
        let c_ox = oxide_capacitance(template.geometry.t_ox);
        let vth_target = long_channel_vth(template.n_sub, c_ox, template.temperature).as_volts();
        let model_err: Cell<Option<ModelError>> = Cell::new(None);
        let residual = |halo: f64| {
            let mut p = *template;
            p.n_p_halo = PerCubicCentimeter::new(halo);
            match model.characterize(&p) {
                Ok(ch) => ch.v_th_sat.as_volts() - vth_target,
                Err(e) => {
                    model_err.set(Some(e));
                    f64::NAN
                }
            }
        };
        // Work in log-space for the wide doping range.
        let root = bisect(
            |log_halo: f64| residual(log_halo.exp()),
            (1.0e14f64).ln(),
            (8.0e19f64).ln(),
            1e-6,
            200,
        )
        .map_err(|_| match model_err.take() {
            Some(e) => DesignError::Model(e),
            None => DesignError::DopingSearch {
                node,
                target: "halo flatness",
            },
        })?;
        if let Some(e) = model_err.take() {
            return Err(DesignError::Model(e));
        }
        trace::observe("design.bisect.steps", root.iterations as f64);
        Ok(PerCubicCentimeter::new(root.x.exp()))
    }

    /// Designs one polarity at one node: substrate doping solved to the
    /// leakage budget with halo-compensated flatness.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] if the budget cannot be bracketed — e.g.
    /// an unsatisfiable leakage budget is reported as
    /// [`DesignError::DopingSearch`], never a panic.
    pub fn design_device(
        &self,
        node: TechNode,
        kind: DeviceKind,
    ) -> Result<DeviceParams, DesignError> {
        self.design_device_with(node, kind, subvt_model::analytic())
    }

    /// Like [`Self::design_device`] but evaluates candidates through an
    /// explicit backend.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] if the budget cannot be bracketed or the
    /// backend fails.
    pub fn design_device_with(
        &self,
        node: TechNode,
        kind: DeviceKind,
        model: &dyn DeviceModel,
    ) -> Result<DeviceParams, DesignError> {
        let budget = self.leakage_budget(node);
        // A backend failure anywhere in the search invalidates the
        // bisection trajectory; a failed *halo* sub-search at a probe
        // point merely leaves the template halo in place (the historical
        // behaviour) but is remembered so a failed outer search can
        // report the root cause instead of a generic bracket failure.
        let model_err: Cell<Option<ModelError>> = Cell::new(None);
        let halo_err: Cell<Option<DesignError>> = Cell::new(None);
        let residual = |log_n_sub: f64| -> f64 {
            let mut p = self.template(node, kind);
            p.n_sub = PerCubicCentimeter::new(log_n_sub.exp());
            match Self::halo_for_flat_vth_with(&p, node, model) {
                Ok(halo) => p.n_p_halo = halo,
                Err(DesignError::Model(e)) => {
                    model_err.set(Some(e));
                    return f64::NAN;
                }
                Err(e) => halo_err.set(Some(e)),
            }
            match model.characterize(&p) {
                // log-residual keeps the exponential I_off(V_th)
                // well-scaled.
                Ok(ch) => (ch.i_off.get() / budget).ln(),
                Err(e) => {
                    model_err.set(Some(e));
                    f64::NAN
                }
            }
        };
        let root =
            bisect(residual, (2.0e17f64).ln(), (2.0e19f64).ln(), 1e-6, 200).map_err(|_| {
                trace::add("design.rejected", 1);
                if let Some(e) = model_err.take() {
                    return DesignError::Model(e);
                }
                halo_err.take().unwrap_or(DesignError::DopingSearch {
                    node,
                    target: "leakage budget",
                })
            })?;
        if let Some(e) = model_err.take() {
            return Err(DesignError::Model(e));
        }
        trace::observe("design.bisect.steps", root.iterations as f64);

        let mut p = self.template(node, kind);
        p.n_sub = PerCubicCentimeter::new(root.x.exp());
        p.n_p_halo = Self::halo_for_flat_vth_with(&p, node, model)?;
        Ok(p)
    }
}

impl ScalingStrategy for SuperVthStrategy {
    fn name(&self) -> &'static str {
        "super-Vth"
    }

    fn design_node_with(
        &self,
        model: &dyn DeviceModel,
        node: TechNode,
    ) -> Result<NodeDesign, DesignError> {
        let nfet = self.design_device_with(node, DeviceKind::Nfet, model)?;
        let pfet = self.design_device_with(node, DeviceKind::Pfet, model)?;
        Ok(NodeDesign {
            node,
            nfet,
            pfet,
            nfet_chars: model.characterize(&nfet)?,
            pfet_chars: model.characterize(&pfet)?,
        })
    }
}

/// Characterizes a super-V_th design at a subthreshold supply (the
/// paper's 250 mV evaluation point): same device, different `V_dd`.
pub fn at_subthreshold_supply(design: &NodeDesign, v_dd: Volts) -> NodeDesign {
    at_subthreshold_supply_with(design, v_dd, subvt_model::analytic())
        .expect("analytic backend is infallible")
}

/// Like [`at_subthreshold_supply`] but re-characterizes through an
/// explicit backend.
///
/// # Errors
///
/// Propagates backend failures as [`DesignError::Model`].
pub fn at_subthreshold_supply_with(
    design: &NodeDesign,
    v_dd: Volts,
    model: &dyn DeviceModel,
) -> Result<NodeDesign, DesignError> {
    let mut d = *design;
    d.nfet.v_dd = v_dd;
    d.pfet.v_dd = v_dd;
    d.nfet_chars = model.characterize(&d.nfet)?;
    d.pfet_chars = model.characterize(&d.pfet)?;
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_90nm_meets_budget_exactly() {
        let d = SuperVthStrategy::default()
            .design_device(TechNode::N90, DeviceKind::Nfet)
            .unwrap();
        let ch = d.characterize();
        assert!(
            (ch.i_off.as_picoamps() - 100.0).abs() < 1.0,
            "I_off = {} pA/µm",
            ch.i_off.as_picoamps()
        );
    }

    #[test]
    fn design_90nm_matches_paper_table2_regime() {
        // Paper Table 2, 90 nm: N_sub = 1.52e18, N_halo = 3.63e18,
        // V_th,sat = 403 mV. Our substrate should land in the same
        // neighbourhood (doping within ~2×, V_th within ~80 mV).
        let d = SuperVthStrategy::default()
            .design_device(TechNode::N90, DeviceKind::Nfet)
            .unwrap();
        let ch = d.characterize();
        let n_sub = d.n_sub.get();
        assert!(n_sub > 0.7e18 && n_sub < 3.0e18, "N_sub = {n_sub:e}");
        let vth = ch.v_th_sat.as_volts();
        assert!((vth - 0.403).abs() < 0.08, "V_th,sat = {vth}");
    }

    #[test]
    fn vth_is_flat_versus_channel_length() {
        // The halo compensation should hold V_th,sat near the long-channel
        // value for moderately longer channels too (roll-off compensated).
        let d = SuperVthStrategy::default()
            .design_device(TechNode::N90, DeviceKind::Nfet)
            .unwrap();
        let c_ox = oxide_capacitance(d.geometry.t_ox);
        let vth_long = long_channel_vth(d.n_sub, c_ox, d.temperature).as_volts();
        let vth_short = d.characterize().v_th_sat.as_volts();
        assert!((vth_short - vth_long).abs() < 2e-3, "flatness at min L");
    }

    #[test]
    fn all_nodes_design_and_track_budget() {
        let designs = SuperVthStrategy::default().design_all().unwrap();
        assert_eq!(designs.len(), 4);
        for d in &designs {
            let want = d.node.i_leak_budget().as_picoamps();
            let got = d.nfet_chars.i_off.as_picoamps();
            assert!(
                (got / want - 1.0).abs() < 0.02,
                "{}: {got} vs {want} pA/µm",
                d.node
            );
        }
    }

    #[test]
    fn swing_degrades_monotonically_with_scaling() {
        // The paper's headline: S_S rises from 90 nm to 32 nm under
        // performance-driven scaling (Fig. 2).
        let designs = SuperVthStrategy::default().design_all().unwrap();
        for w in designs.windows(2) {
            assert!(
                w[1].nfet_chars.s_s.get() > w[0].nfet_chars.s_s.get(),
                "{} -> {}",
                w[0].node,
                w[1].node
            );
        }
        let first = designs[0].nfet_chars.s_s.get();
        let last = designs[3].nfet_chars.s_s.get();
        let degradation = last / first - 1.0;
        assert!(
            degradation > 0.08,
            "expected noticeable S_S degradation, got {degradation}"
        );
    }

    #[test]
    fn doping_grows_with_scaling() {
        let designs = SuperVthStrategy::default().design_all().unwrap();
        for w in designs.windows(2) {
            assert!(w[1].nfet.n_sub.get() > w[0].nfet.n_sub.get());
        }
    }

    #[test]
    fn subthreshold_recharacterization_keeps_device() {
        let d = SuperVthStrategy::default()
            .design_node(TechNode::N90)
            .unwrap();
        let sub = at_subthreshold_supply(&d, Volts::new(0.25));
        assert_eq!(sub.nfet.n_sub, d.nfet.n_sub);
        assert!(sub.nfet_chars.i_on.get() < d.nfet_chars.i_on.get());
    }

    #[test]
    fn unsatisfiable_tight_leakage_budget_is_an_error() {
        // A budget orders of magnitude below anything the doping range
        // can reach must surface as a DopingSearch error, not a silent
        // clamp onto a bracket endpoint or a panic.
        let strict = SuperVthStrategy {
            i_leak_90nm_pa: 1.0e-12,
            ..SuperVthStrategy::default()
        };
        let r = strict.design_device(TechNode::N90, DeviceKind::Nfet);
        assert!(
            matches!(
                r,
                Err(DesignError::DopingSearch {
                    target: "leakage budget",
                    ..
                })
            ),
            "{r:?}"
        );
    }

    #[test]
    fn unsatisfiable_loose_leakage_budget_is_an_error() {
        // The opposite direction: a budget far above the lightest
        // substrate's leakage cannot be bracketed either.
        let loose = SuperVthStrategy {
            i_leak_90nm_pa: 1.0e12,
            ..SuperVthStrategy::default()
        };
        let r = loose.design_device(TechNode::N90, DeviceKind::Nfet);
        assert!(matches!(r, Err(DesignError::DopingSearch { .. })), "{r:?}");
    }

    #[test]
    fn pfet_design_balances_its_own_leakage() {
        let d = SuperVthStrategy::default()
            .design_node(TechNode::N90)
            .unwrap();
        let want = d.node.i_leak_budget().as_picoamps();
        let got = d.pfet_chars.i_off.as_picoamps();
        assert!(
            (got / want - 1.0).abs() < 0.02,
            "PFET I_off {got} vs {want}"
        );
    }
}
