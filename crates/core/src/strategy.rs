//! The scaling-strategy abstraction: both of the paper's flows produce a
//! [`NodeDesign`] per technology node, and everything downstream
//! (figures, benches, examples) consumes designs through the
//! [`ScalingStrategy`] trait.
//!
//! Every flow evaluates candidate devices through a
//! [`DeviceModel`] backend; the `*_with` trait methods select the
//! backend explicitly, while the plain methods default to the analytic
//! compact model (byte-identical to the historical behaviour).

use subvt_circuits::inverter::CmosPair;
use subvt_model::{DeviceModel, ModelError};
use subvt_physics::device::{DeviceCharacteristics, DeviceParams};

use crate::roadmap::TechNode;

/// Errors from a device-design flow.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    /// A doping search could not bracket its target.
    DopingSearch {
        /// Node being designed.
        node: TechNode,
        /// What the search was solving for.
        target: &'static str,
    },
    /// The device-model backend failed to characterize a candidate.
    Model(ModelError),
}

impl core::fmt::Display for DesignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DesignError::DopingSearch { node, target } => {
                write!(f, "doping search for {target} failed to bracket at {node}")
            }
            DesignError::Model(e) => write!(f, "device model error: {e}"),
        }
    }
}

impl std::error::Error for DesignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DesignError::DopingSearch { .. } => None,
            DesignError::Model(e) => Some(e),
        }
    }
}

impl From<ModelError> for DesignError {
    fn from(e: ModelError) -> Self {
        DesignError::Model(e)
    }
}

/// A complete complementary device design at one technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeDesign {
    /// Technology node.
    pub node: TechNode,
    /// NFET parameter set.
    pub nfet: DeviceParams,
    /// PFET parameter set.
    pub pfet: DeviceParams,
    /// NFET characterization.
    pub nfet_chars: DeviceCharacteristics,
    /// PFET characterization.
    pub pfet_chars: DeviceCharacteristics,
}

impl NodeDesign {
    /// Builds the circuit-level device pair, balancing widths for a
    /// symmetric subthreshold VTC. Gate widths scale with the node's
    /// 30 %-per-generation dimension factor (a minimum-width inverter
    /// shrinks along with every other layout dimension), which is what
    /// makes scaled nodes cheaper in absolute energy.
    pub fn cmos_pair(&self) -> CmosPair {
        self.cmos_pair_with(subvt_model::analytic())
    }

    /// Like [`Self::cmos_pair`] but routes circuit-level
    /// characterization through an explicit backend. The width balance
    /// comes from the stored design-time characteristics so the pair's
    /// geometry is independent of the evaluation backend.
    pub fn cmos_pair_with(&self, model: &'static dyn DeviceModel) -> CmosPair {
        let i0_n = self.nfet_chars.i0.get();
        let i0_p = self.pfet_chars.i0.get();
        let wn_um = self.node.dimension_scale();
        let wp_um = wn_um * (i0_n / i0_p).clamp(1.0, 4.0);
        CmosPair::from_parts(self.nfet, self.pfet, wn_um, wp_um, model)
    }
}

/// A device-scaling strategy: a rule for producing one [`NodeDesign`]
/// per technology node.
pub trait ScalingStrategy {
    /// Short name used in tables and figure legends.
    fn name(&self) -> &'static str;

    /// Designs the devices for one node, evaluating every candidate
    /// through the given backend.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] when the underlying doping searches cannot
    /// meet the flow's constraints, or when the backend fails to
    /// characterize a candidate.
    fn design_node_with(
        &self,
        model: &dyn DeviceModel,
        node: TechNode,
    ) -> Result<NodeDesign, DesignError>;

    /// Designs the devices for one node with the analytic backend.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] when the underlying doping searches cannot
    /// meet the flow's constraints.
    fn design_node(&self, node: TechNode) -> Result<NodeDesign, DesignError> {
        self.design_node_with(subvt_model::analytic(), node)
    }

    /// Designs every node from 90 nm to 32 nm through the given backend.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DesignError`] encountered.
    fn design_all_with(&self, model: &dyn DeviceModel) -> Result<Vec<NodeDesign>, DesignError> {
        TechNode::ALL
            .iter()
            .map(|&n| self.design_node_with(model, n))
            .collect()
    }

    /// Designs every node from 90 nm to 32 nm with the analytic backend.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DesignError`] encountered.
    fn design_all(&self) -> Result<Vec<NodeDesign>, DesignError> {
        TechNode::ALL.iter().map(|&n| self.design_node(n)).collect()
    }
}
