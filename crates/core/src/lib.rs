//! Device-scaling strategies for subthreshold circuits.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Nanometer Device Scaling in Subthreshold Circuits"* (Hanson, Seok,
//! Sylvester, Blaauw — DAC 2007):
//!
//! * [`roadmap`] — the stated scaling inputs (L_poly −30 %/gen,
//!   T_ox −10 %/gen, V_dd and leakage-budget schedules).
//! * [`generalized`] — classical generalized scaling theory (Table 1).
//! * [`supervth`] — the performance-driven flow of Fig. 1(c): halo
//!   doping solved for V_th flatness, substrate doping solved to the
//!   leakage budget (reproduces Table 2).
//! * [`subvth`] — the paper's proposed flow: constant I_off with
//!   (L_poly, doping) co-optimized for the energy factor C_L·S_S²
//!   (reproduces Table 3).
//! * [`metrics`] — the closed-form sub-V_th delay (Eq. 6) and energy
//!   (Eq. 8) factors.
//!
//! # Example: design both strategies at 32 nm
//!
//! ```no_run
//! use subvt_core::strategy::ScalingStrategy;
//! use subvt_core::roadmap::TechNode;
//! use subvt_core::supervth::SuperVthStrategy;
//! use subvt_core::subvth::SubVthStrategy;
//!
//! let conventional = SuperVthStrategy::default().design_node(TechNode::N32)?;
//! let proposed = SubVthStrategy::default().design_node(TechNode::N32)?;
//! // The proposed strategy holds the subthreshold swing near 80 mV/dec.
//! assert!(proposed.nfet_chars.s_s.get() < conventional.nfet_chars.s_s.get());
//! # Ok::<(), subvt_core::strategy::DesignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generalized;
pub mod metrics;
pub mod roadmap;
pub mod strategy;
pub mod subvth;
pub mod supervth;

pub use roadmap::TechNode;
pub use strategy::{DesignError, NodeDesign, ScalingStrategy};
pub use subvth::SubVthStrategy;
pub use supervth::SuperVthStrategy;
