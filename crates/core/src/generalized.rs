//! Generalized scaling theory — the paper's Table 1 (after Baccarani,
//! Wordeman & Dennard, ref \[8\]).
//!
//! Physical dimensions scale by `1/α`; the peak channel field is allowed
//! to grow by `ε` per generation (constant-field scaling is the special
//! case `ε = 1`), which makes doping scale by `ε·α` and voltage by `ε/α`.

/// A generalized-scaling rule set with dimension factor `α` and field
/// growth factor `ε` per generation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GeneralizedScaling {
    /// Dimension scaling factor `α > 1` (dimensions shrink by `1/α`).
    pub alpha: f64,
    /// Electric-field growth factor `ε ≥ 1`.
    pub epsilon: f64,
}

impl GeneralizedScaling {
    /// Creates a rule set.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 1` and `epsilon >= 1`.
    pub fn new(alpha: f64, epsilon: f64) -> Self {
        assert!(alpha > 1.0, "alpha must exceed 1 (dimensions shrink)");
        assert!(epsilon >= 1.0, "epsilon must be at least 1");
        Self { alpha, epsilon }
    }

    /// Dennard constant-field scaling: `ε = 1`.
    pub fn constant_field(alpha: f64) -> Self {
        Self::new(alpha, 1.0)
    }

    /// The classic "30 % per generation" cadence: `α = 1/0.7`.
    pub fn classic(epsilon: f64) -> Self {
        Self::new(1.0 / 0.7, epsilon)
    }

    /// Physical dimension factor `1/α` (applies to `L_poly`, `T_ox`, `W`,
    /// wire dimensions).
    pub fn dimension_factor(&self) -> f64 {
        1.0 / self.alpha
    }

    /// Channel doping factor `ε·α`.
    pub fn doping_factor(&self) -> f64 {
        self.epsilon * self.alpha
    }

    /// Supply/threshold voltage factor `ε/α`.
    pub fn voltage_factor(&self) -> f64 {
        self.epsilon / self.alpha
    }

    /// Circuit area factor `1/α²`.
    pub fn area_factor(&self) -> f64 {
        1.0 / (self.alpha * self.alpha)
    }

    /// Intrinsic delay factor `1/α`.
    pub fn delay_factor(&self) -> f64 {
        1.0 / self.alpha
    }

    /// Power dissipation factor `ε²/α²`.
    pub fn power_factor(&self) -> f64 {
        (self.epsilon * self.epsilon) / (self.alpha * self.alpha)
    }

    /// Power density factor `ε²` (power over area) — the quantity whose
    /// growth ended pure Dennard scaling.
    pub fn power_density_factor(&self) -> f64 {
        self.epsilon * self.epsilon
    }
}

/// One row of the paper's Table 1: a parameter, its symbolic scaling
/// factor, and the numeric value under the given rule set.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table1Row {
    /// Parameter description.
    pub parameter: &'static str,
    /// Symbolic factor as printed in the paper.
    pub symbol: &'static str,
    /// Numeric value under the chosen (α, ε).
    pub value: f64,
}

/// Generates the paper's Table 1 for a given rule set.
pub fn table1(rules: &GeneralizedScaling) -> Vec<Table1Row> {
    vec![
        Table1Row {
            parameter: "Physical dimensions (L_poly, T_ox, ...)",
            symbol: "1/a",
            value: rules.dimension_factor(),
        },
        Table1Row {
            parameter: "N_ch",
            symbol: "e*a",
            value: rules.doping_factor(),
        },
        Table1Row {
            parameter: "V_dd",
            symbol: "e/a",
            value: rules.voltage_factor(),
        },
        Table1Row {
            parameter: "Area",
            symbol: "1/a^2",
            value: rules.area_factor(),
        },
        Table1Row {
            parameter: "Delay",
            symbol: "1/a",
            value: rules.delay_factor(),
        },
        Table1Row {
            parameter: "Power",
            symbol: "e^2/a^2",
            value: rules.power_factor(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn constant_field_keeps_power_density() {
        let r = GeneralizedScaling::constant_field(1.0 / 0.7);
        assert!((r.power_density_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classic_cadence_shrinks_30_percent() {
        let r = GeneralizedScaling::classic(1.1);
        assert!((r.dimension_factor() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn table1_has_six_rows_in_paper_order() {
        let rows = table1(&GeneralizedScaling::classic(1.0));
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].symbol, "1/a");
        assert_eq!(rows[1].symbol, "e*a");
        assert_eq!(rows[5].symbol, "e^2/a^2");
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn rejects_growing_dimensions() {
        let _ = GeneralizedScaling::new(0.9, 1.0);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn identities_hold(alpha in 1.01f64..2.0, eps in 1.0f64..1.5) {
            let r = GeneralizedScaling::new(alpha, eps);
            // Power = (V·I) scaling = (ε/α)·(ε/α) = voltage²… and equals
            // power density × area.
            prop_assert!(
                (r.power_factor() - r.power_density_factor() * r.area_factor()).abs()
                    < 1e-12
            );
            prop_assert!(
                (r.power_factor() - r.voltage_factor() * r.voltage_factor()).abs()
                    < 1e-12
            );
            // Doping × dimension² = ε·α/α² = ε/α = voltage factor
            // (consistent depletion-width scaling).
            let lhs = r.doping_factor() * r.dimension_factor() * r.dimension_factor();
            prop_assert!((lhs - r.voltage_factor()).abs() < 1e-12);
        }
    }
}
