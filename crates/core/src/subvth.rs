//! The proposed sub-V_th scaling flow (paper §3): fix `I_off` at
//! 100 pA/µm across all generations, then *co-optimize* the gate length
//! and the doping profile for the minimum of the sub-V_th energy factor
//! `C_L·S_S²` (paper Eq. 8) — yielding longer channels, lighter halos and
//! a nearly scaling-invariant `S_S ≈ 80 mV/dec`.
//!
//! Per candidate `L_poly`:
//!
//! 1. For each halo-to-substrate ratio `f = N_p,halo/N_sub` on a grid,
//!    solve `N_sub` so `I_off` meets the target exactly, and keep the `f`
//!    minimizing `S_S` (paper Fig. 7's "doping profile optimized for each
//!    value of L_poly").
//! 2. Score the candidate with the energy factor `C_L·S_S²`.
//!
//! The energy-optimal `L_poly` is then located by golden-section over the
//! candidate range (paper Fig. 8), and the same doping flow designs the
//! PFET at the NFET's optimal length (the paper finds the PFET optimum is
//! "almost identical").

use std::cell::Cell;

use subvt_engine::trace;
use subvt_model::{DeviceModel, ModelError};
use subvt_physics::device::{DeviceGeometry, DeviceKind, DeviceParams};
use subvt_physics::math::{bisect, golden_section};
use subvt_units::{AmpsPerMicron, Nanometers, PerCubicCentimeter, Temperature};

use crate::metrics::energy_factor;
use crate::roadmap::TechNode;
use crate::strategy::{DesignError, NodeDesign, ScalingStrategy};

/// Reference geometry ratios at 90 nm. Under the sub-V_th strategy these
/// scale with the *generation* (30 %/gen), not with the freely chosen
/// `L_poly` — the paper's "all other physical dimensions, excluding
/// L_poly, reduce by 30 % each generation".
const L_OVERLAP_90NM: f64 = 10.0;
const X_J_90NM: f64 = 30.0;
const HALO_SIGMA_90NM: f64 = 7.5;

const N_SD: PerCubicCentimeter = PerCubicCentimeter::new(1.0e20);

/// Halo-ratio grid searched during doping optimization.
const HALO_RATIOS: [f64; 9] = [0.0, 0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

/// The sub-V_th scaling strategy (paper §3, producing Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubVthStrategy {
    /// Constant off-current target across generations (the paper fixes
    /// 100 pA/µm).
    pub i_off_target: AmpsPerMicron,
}

impl Default for SubVthStrategy {
    fn default() -> Self {
        Self {
            i_off_target: AmpsPerMicron::from_picoamps(100.0),
        }
    }
}

impl SubVthStrategy {
    /// Device geometry at a node for a chosen gate length.
    pub fn geometry(node: TechNode, l_poly: Nanometers) -> DeviceGeometry {
        let s = node.dimension_scale();
        DeviceGeometry {
            l_poly,
            t_ox: node.t_ox(),
            l_overlap: Nanometers::new(L_OVERLAP_90NM * s),
            x_j: Nanometers::new(X_J_90NM * s),
            halo_sigma: Nanometers::new(HALO_SIGMA_90NM * s),
        }
    }

    fn template(&self, node: TechNode, kind: DeviceKind, l_poly: Nanometers) -> DeviceParams {
        DeviceParams {
            kind,
            geometry: Self::geometry(node, l_poly),
            n_sub: PerCubicCentimeter::new(1.0e18),
            n_p_halo: PerCubicCentimeter::new(1.0e15),
            n_sd: N_SD,
            // I_off is specified at the node's nominal rail so the two
            // strategies are compared under identical leakage conditions.
            v_dd: node.v_dd_nominal(),
            temperature: Temperature::room(),
        }
    }

    /// Solves `N_sub` (at fixed halo ratio `f`) to meet the off-current
    /// target.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] if the target cannot be bracketed.
    pub fn doping_for_ioff(
        &self,
        node: TechNode,
        kind: DeviceKind,
        l_poly: Nanometers,
        halo_ratio: f64,
    ) -> Result<DeviceParams, DesignError> {
        self.doping_for_ioff_with(node, kind, l_poly, halo_ratio, subvt_model::analytic())
    }

    /// Like [`Self::doping_for_ioff`] but evaluates candidates through an
    /// explicit backend.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::DopingSearch`] when the target cannot be
    /// bracketed — an unsatisfiable `i_off_target` is an error, never a
    /// panic — and [`DesignError::Model`] when the backend fails on a
    /// probe.
    pub fn doping_for_ioff_with(
        &self,
        node: TechNode,
        kind: DeviceKind,
        l_poly: Nanometers,
        halo_ratio: f64,
        model: &dyn DeviceModel,
    ) -> Result<DeviceParams, DesignError> {
        let target = self.i_off_target.get();
        let make = |n_sub: f64| {
            let mut p = self.template(node, kind, l_poly);
            p.n_sub = PerCubicCentimeter::new(n_sub);
            p.n_p_halo = PerCubicCentimeter::new((halo_ratio * n_sub).max(1.0e14));
            p
        };
        let model_err: Cell<Option<ModelError>> = Cell::new(None);
        let root = bisect(
            |log_n: f64| match model.characterize(&make(log_n.exp())) {
                Ok(ch) => (ch.i_off.get() / target).ln(),
                Err(e) => {
                    model_err.set(Some(e));
                    f64::NAN
                }
            },
            (1.0e17f64).ln(),
            (3.0e19f64).ln(),
            1e-6,
            200,
        )
        .map_err(|_| match model_err.take() {
            Some(e) => DesignError::Model(e),
            None => DesignError::DopingSearch {
                node,
                target: "sub-Vth I_off",
            },
        })?;
        if let Some(e) = model_err.take() {
            return Err(DesignError::Model(e));
        }
        trace::observe("design.bisect.steps", root.iterations as f64);
        Ok(make(root.x.exp()))
    }

    /// Optimizes the doping profile at a fixed gate length: the
    /// `S_S`-minimal halo ratio subject to the off-current target (the
    /// "optimized doping" curve of the paper's Fig. 7).
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] if no halo ratio admits the target.
    pub fn optimize_doping_at_length(
        &self,
        node: TechNode,
        kind: DeviceKind,
        l_poly: Nanometers,
    ) -> Result<DeviceParams, DesignError> {
        self.optimize_doping_at_length_with(node, kind, l_poly, subvt_model::analytic())
    }

    /// Like [`Self::optimize_doping_at_length`] but evaluates candidates
    /// through an explicit backend.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] if no halo ratio admits the target; when
    /// every ratio failed, the last underlying failure is reported
    /// instead of a generic scan error.
    pub fn optimize_doping_at_length_with(
        &self,
        node: TechNode,
        kind: DeviceKind,
        l_poly: Nanometers,
        model: &dyn DeviceModel,
    ) -> Result<DeviceParams, DesignError> {
        let mut best: Option<(f64, DeviceParams)> = None;
        let mut last_err: Option<DesignError> = None;
        for &f in &HALO_RATIOS {
            match self
                .doping_for_ioff_with(node, kind, l_poly, f, model)
                .and_then(|p| Ok((model.characterize(&p)?.s_s.get(), p)))
            {
                Ok((ss, p)) => {
                    if best.as_ref().is_none_or(|(b, _)| ss < *b) {
                        best = Some((ss, p));
                    }
                }
                Err(e) => {
                    trace::add("design.rejected", 1);
                    last_err = Some(e);
                }
            }
        }
        best.map(|(_, p)| p).ok_or_else(|| {
            last_err.unwrap_or(DesignError::DopingSearch {
                node,
                target: "halo-ratio scan",
            })
        })
    }

    /// Candidate gate-length range at a node: from the node's minimum
    /// feature up to just beyond the previous generation's optimum.
    pub fn l_poly_range(node: TechNode) -> (Nanometers, Nanometers) {
        let min = node.l_poly_supervth();
        let max = Nanometers::new(140.0 * node.dimension_scale().sqrt());
        (min, max)
    }

    /// Finds the energy-optimal gate length at a node (paper Fig. 8):
    /// coarse grid scan followed by golden-section refinement of
    /// `C_L·S_S²` over `L_poly`.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] if doping optimization fails across the
    /// whole candidate range.
    pub fn optimal_l_poly(
        &self,
        node: TechNode,
        kind: DeviceKind,
    ) -> Result<Nanometers, DesignError> {
        self.optimal_l_poly_with(node, kind, subvt_model::analytic())
    }

    /// Like [`Self::optimal_l_poly`] but evaluates candidates through an
    /// explicit backend.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] if doping optimization fails across the
    /// whole candidate range.
    pub fn optimal_l_poly_with(
        &self,
        node: TechNode,
        kind: DeviceKind,
        model: &dyn DeviceModel,
    ) -> Result<Nanometers, DesignError> {
        let _span = trace::span("design.optimal_l_poly")
            .attr("node", node.to_string())
            .attr("kind", format!("{kind:?}"))
            .attr("backend", model.cache_id());
        let (lo, hi) = Self::l_poly_range(node);
        let score = |l: f64| -> f64 {
            trace::add("design.l_poly.candidates", 1);
            self.optimize_doping_at_length_with(node, kind, Nanometers::new(l), model)
                .and_then(|p| Ok(energy_factor(&model.characterize(&p)?)))
                .unwrap_or(f64::INFINITY)
        };
        // Coarse scan to bracket the minimum…
        let n_grid = 9;
        let mut best_l = lo.get();
        let mut best_s = f64::INFINITY;
        for i in 0..n_grid {
            let l = lo.get() + (hi.get() - lo.get()) * i as f64 / (n_grid - 1) as f64;
            let s = score(l);
            if s < best_s {
                best_s = s;
                best_l = l;
            }
        }
        if !best_s.is_finite() {
            return Err(DesignError::DopingSearch {
                node,
                target: "L_poly scan",
            });
        }
        // …then refine around the best grid cell.
        let span = (hi.get() - lo.get()) / (n_grid - 1) as f64;
        let a = (best_l - span).max(lo.get());
        let b = (best_l + span).min(hi.get());
        let min = golden_section(score, a, b, 0.25, 100);
        Ok(Nanometers::new(min.x))
    }
}

impl ScalingStrategy for SubVthStrategy {
    fn name(&self) -> &'static str {
        "sub-Vth"
    }

    fn design_node_with(
        &self,
        model: &dyn DeviceModel,
        node: TechNode,
    ) -> Result<NodeDesign, DesignError> {
        let l_opt = self.optimal_l_poly_with(node, DeviceKind::Nfet, model)?;
        let nfet = self.optimize_doping_at_length_with(node, DeviceKind::Nfet, l_opt, model)?;
        // The paper reuses the NFET's optimal length for the PFET.
        let pfet = self.optimize_doping_at_length_with(node, DeviceKind::Pfet, l_opt, model)?;
        Ok(NodeDesign {
            node,
            nfet,
            pfet,
            nfet_chars: model.characterize(&nfet)?,
            pfet_chars: model.characterize(&pfet)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ioff_target_met_at_all_nodes() {
        let s = SubVthStrategy::default();
        for d in s.design_all().unwrap() {
            let pa = d.nfet_chars.i_off.as_picoamps();
            assert!((pa - 100.0).abs() < 1.5, "{}: {pa} pA/µm", d.node);
        }
    }

    #[test]
    fn gate_length_longer_than_supervth_minimum() {
        // Paper Table 3: L_poly = 95/75/60/45 vs Table 2's 65/46/32/22.
        let s = SubVthStrategy::default();
        for d in s.design_all().unwrap() {
            assert!(
                d.nfet.geometry.l_poly.get() > d.node.l_poly_supervth().get(),
                "{}: {} should exceed {}",
                d.node,
                d.nfet.geometry.l_poly,
                d.node.l_poly_supervth()
            );
        }
    }

    #[test]
    fn swing_stays_nearly_flat() {
        // The paper's headline result: S_S varies by only ~1-2 mV/dec
        // across four generations under the proposed strategy.
        let s = SubVthStrategy::default();
        let designs = s.design_all().unwrap();
        let ss: Vec<f64> = designs.iter().map(|d| d.nfet_chars.s_s.get()).collect();
        let spread = ss.iter().cloned().fold(f64::MIN, f64::max)
            - ss.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 6.0, "S_S spread = {spread} over {ss:?}");
        // And the absolute value sits near the paper's ~80 mV/dec.
        for v in &ss {
            assert!((70.0..92.0).contains(v), "S_S = {v}");
        }
    }

    #[test]
    fn energy_factor_improves_every_generation() {
        let s = SubVthStrategy::default();
        let designs = s.design_all().unwrap();
        let ef: Vec<f64> = designs
            .iter()
            .map(|d| energy_factor(&d.nfet_chars))
            .collect();
        for w in ef.windows(2) {
            assert!(w[1] < w[0], "energy factor must fall: {ef:?}");
        }
    }

    #[test]
    fn optimized_doping_beats_fixed_heavy_halo() {
        // At a long channel, halo doping hurts S_S: the optimizer should
        // find a better (lighter-halo) profile than a forced f = 2.
        let s = SubVthStrategy::default();
        let l = Nanometers::new(90.0);
        let opt = s
            .optimize_doping_at_length(TechNode::N45, DeviceKind::Nfet, l)
            .unwrap();
        let heavy = s
            .doping_for_ioff(TechNode::N45, DeviceKind::Nfet, l, 2.0)
            .unwrap();
        assert!(opt.characterize().s_s.get() <= heavy.characterize().s_s.get() + 1e-9);
    }

    #[test]
    fn optimum_interior_to_candidate_range() {
        let s = SubVthStrategy::default();
        let (lo, hi) = SubVthStrategy::l_poly_range(TechNode::N45);
        let l = s.optimal_l_poly(TechNode::N45, DeviceKind::Nfet).unwrap();
        assert!(l.get() > lo.get() && l.get() < hi.get(), "L_opt = {l}");
    }

    #[test]
    fn unsatisfiable_ioff_target_is_an_error() {
        // No doping in the bracket leaks a full 1e12 pA/µm; the search
        // must report the failure rather than panic or return a clamped
        // endpoint device.
        use crate::strategy::DesignError;
        let s = SubVthStrategy {
            i_off_target: AmpsPerMicron::from_picoamps(1.0e12),
        };
        let r = s.doping_for_ioff(TechNode::N90, DeviceKind::Nfet, Nanometers::new(90.0), 1.0);
        assert!(
            matches!(
                r,
                Err(DesignError::DopingSearch {
                    target: "sub-Vth I_off",
                    ..
                })
            ),
            "{r:?}"
        );
        // And the scan over halo ratios degrades into the same error
        // instead of swallowing it.
        let scan =
            s.optimize_doping_at_length(TechNode::N90, DeviceKind::Nfet, Nanometers::new(90.0));
        assert!(
            matches!(scan, Err(DesignError::DopingSearch { .. })),
            "{scan:?}"
        );
    }

    #[test]
    fn pfet_uses_nfet_length() {
        let s = SubVthStrategy::default();
        let d = s.design_node(TechNode::N65).unwrap();
        assert_eq!(d.nfet.geometry.l_poly, d.pfet.geometry.l_poly);
    }
}
