//! The paper's closed-form sub-V_th scaling metrics.
//!
//! With operation pinned at the energy-optimal supply
//! `V_min = K_Vmin·S_S` (refs \[17\]\[18\]), the paper shows that
//!
//! * delay scales as `C_L·S_S / I_off` (Eq. 6), and
//! * both dynamic and leakage energy scale as `C_L·S_S²` (Eq. 8) —
//!   with `E_dyn/E_leak` scaling-invariant.
//!
//! These factors let a prospective technology be scored for sub-V_th use
//! from three numbers, before any circuit simulation.

use subvt_physics::device::DeviceCharacteristics;

/// The load capacitance entering the factors: gate plus drain parasitic
/// per micron of width — the FO1 loading of a minimum inverter.
pub fn load_capacitance(chars: &DeviceCharacteristics) -> f64 {
    chars.c_g.get() + chars.c_drain.get()
}

/// Sub-V_th energy factor `C_L·S_S²` (paper Eq. 8), arbitrary units
/// (F·mV²/dec²). Lower is better.
pub fn energy_factor(chars: &DeviceCharacteristics) -> f64 {
    let ss = chars.s_s.get();
    load_capacitance(chars) * ss * ss
}

/// Sub-V_th delay factor `C_L·S_S / I_off` (paper Eq. 6), arbitrary
/// units. Lower is better. When `I_off` is held constant across nodes
/// this reduces to `C_L·S_S`, the form in the paper's Table 3.
pub fn delay_factor(chars: &DeviceCharacteristics) -> f64 {
    load_capacitance(chars) * chars.s_s.get() / chars.i_off.get()
}

/// Fixed-leakage delay factor `C_L·S_S` — the simplification used in
/// Table 3 where `I_off ≡ 100 pA/µm`.
pub fn delay_factor_fixed_ioff(chars: &DeviceCharacteristics) -> f64 {
    load_capacitance(chars) * chars.s_s.get()
}

/// Normalizes a series to its first element (the paper's Table 3 lists
/// both factors normalized to the 90 nm node).
///
/// # Panics
///
/// Panics if `values` is empty or the first element is zero.
pub fn normalize_to_first(values: &[f64]) -> Vec<f64> {
    assert!(!values.is_empty(), "nothing to normalize");
    let base = values[0];
    assert!(base != 0.0, "cannot normalize to zero");
    values.iter().map(|v| v / base).collect()
}

/// On/off ratio at a given supply from the slope identity
/// `I_on/I_off = 10^{V_dd/S_S}` (used before Eq. 6).
pub fn on_off_ratio(chars: &DeviceCharacteristics, v_dd_volts: f64) -> f64 {
    10.0_f64.powf(v_dd_volts / chars.s_s.as_volts_per_decade())
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_physics::device::DeviceParams;

    fn chars() -> DeviceCharacteristics {
        DeviceParams::reference_90nm_nfet().characterize()
    }

    #[test]
    fn factors_positive_and_consistent() {
        let ch = chars();
        assert!(energy_factor(&ch) > 0.0);
        assert!(delay_factor(&ch) > 0.0);
        // E-factor = D-factor(fixed) × S_S.
        let lhs = energy_factor(&ch);
        let rhs = delay_factor_fixed_ioff(&ch) * ch.s_s.get();
        assert!((lhs / rhs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_starts_at_unity() {
        let n = normalize_to_first(&[2.0, 1.0, 0.5]);
        assert_eq!(n, vec![1.0, 0.5, 0.25]);
    }

    #[test]
    #[should_panic(expected = "nothing to normalize")]
    fn normalize_empty_panics() {
        let _ = normalize_to_first(&[]);
    }

    #[test]
    fn on_off_ratio_identity_at_250mv() {
        let ch = chars();
        let r = on_off_ratio(&ch, 0.25);
        let want = 10.0f64.powf(0.25 / (ch.s_s.get() * 1e-3));
        assert!((r / want - 1.0).abs() < 1e-12);
        assert!(r > 100.0, "expected a few hundred at 250 mV, got {r}");
    }

    #[test]
    fn worse_swing_costs_quadratically_in_energy() {
        let ch_a = chars();
        let mut p = DeviceParams::reference_90nm_nfet();
        // A shorter channel degrades S_S; same capacitance trend ignored —
        // check the factor moves the right way.
        p.geometry.l_poly = subvt_units::Nanometers::new(40.0);
        let ch_b = p.characterize();
        assert!(ch_b.s_s.get() > ch_a.s_s.get());
        let ratio_ss = ch_b.s_s.get() / ch_a.s_s.get();
        let ratio_e = (energy_factor(&ch_b) / load_capacitance(&ch_b))
            / (energy_factor(&ch_a) / load_capacitance(&ch_a));
        assert!((ratio_e - ratio_ss * ratio_ss).abs() < 1e-9);
    }
}
