//! Netlist representation: nodes, waveforms, elements and a builder API.
//!
//! Node 0 is always ground. Nodes are created by name through
//! [`Netlist::node`], so circuit-construction code reads like a SPICE deck:
//!
//! ```
//! use subvt_spice::netlist::{Netlist, Waveform};
//!
//! let mut net = Netlist::new();
//! let vdd = net.node("vdd");
//! let out = net.node("out");
//! net.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.2));
//! net.resistor("R1", vdd, out, 10_000.0);
//! net.capacitor("C1", out, Netlist::GROUND, 1.0e-15);
//! assert_eq!(net.node_count(), 3); // ground + vdd + out
//! ```

use std::collections::HashMap;

use subvt_engine::{KeyBuilder, Keyed};
use subvt_physics::device::DeviceKind;
use subvt_physics::MosModel;

/// Index of a circuit node. `0` is ground.
pub type NodeId = usize;

/// A time-dependent source value.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse.
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width (time at `v1`), seconds.
        width: f64,
        /// Repetition period; `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// Piece-wise linear `(time, value)` points, sorted by time; clamps
    /// outside the covered interval.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Evaluates the waveform at time `t` (seconds).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let mut tau = t - delay;
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    let f = if *rise > 0.0 { tau / rise } else { 1.0 };
                    v0 + (v1 - v0) * f
                } else if tau < rise + width {
                    *v1
                } else if tau < rise + width + fall {
                    let f = if *fall > 0.0 {
                        (tau - rise - width) / fall
                    } else {
                        1.0
                    };
                    v1 + (v0 - v1) * f
                } else {
                    *v0
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                let last = points[points.len() - 1];
                if t >= last.0 {
                    return last.1;
                }
                let idx = points.partition_point(|&(pt, _)| pt < t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
        }
    }
}

/// A MOSFET instance: a compact model plus width and terminal wiring.
/// The body terminal is implicit (tied to the source rail); the compact
/// [`MosModel`] carries no body-bias dependence.
#[derive(Debug, Clone, PartialEq)]
pub struct MosInstance {
    /// The compact I–V model (carries the polarity).
    pub model: MosModel,
    /// Gate width in microns (scales the width-normalized model).
    pub width_um: f64,
    /// Drain node.
    pub drain: NodeId,
    /// Gate node.
    pub gate: NodeId,
    /// Source node.
    pub source: NodeId,
}

/// A circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between two nodes.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor between two nodes.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Independent voltage source (adds an MNA branch unknown).
    VSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source value over time.
        waveform: Waveform,
    },
    /// Independent current source, flowing from `pos` through the source
    /// to `neg` (i.e. it injects current into `neg`… SPICE convention:
    /// positive current flows from `pos` terminal through the source).
    ISource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source value over time.
        waveform: Waveform,
    },
    /// MOSFET instance.
    Mosfet(MosInstance),
}

/// A named element with its definition.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedElement {
    /// Instance name (for diagnostics and measurements).
    pub name: String,
    /// The element definition.
    pub element: Element,
}

/// A flat circuit netlist.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    names: HashMap<String, NodeId>,
    node_count: usize,
    elements: Vec<NamedElement>,
}

impl Netlist {
    /// The ground node, always index 0.
    pub const GROUND: NodeId = 0;

    /// Creates an empty netlist containing only ground.
    pub fn new() -> Self {
        let mut names = HashMap::new();
        names.insert("0".to_owned(), 0);
        names.insert("gnd".to_owned(), 0);
        Self {
            names,
            node_count: 1,
            elements: Vec::new(),
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = self.node_count;
        self.node_count += 1;
        self.names.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Name of a node, for diagnostics. When several names alias the same
    /// node (ground is both `0` and `gnd`) the lexicographically smallest
    /// is returned, so the answer is deterministic.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.names
            .iter()
            .filter(|(_, &id)| id == node)
            .map(|(name, _)| name.as_str())
            .min()
    }

    /// Applies `f` to every MOSFET instance as `(name, instance)`, in
    /// insertion order — the Monte-Carlo patch point for per-sample
    /// threshold perturbations on an already-compiled deck.
    pub fn for_each_mosfet_mut(&mut self, mut f: impl FnMut(&str, &mut MosInstance)) {
        for e in &mut self.elements {
            if let Element::Mosfet(inst) = &mut e.element {
                f(&e.name, inst);
            }
        }
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[NamedElement] {
        &self.elements
    }

    /// Mutable access for crate-internal patching (DC sweeps).
    pub(crate) fn elements_mut(&mut self) -> &mut Vec<NamedElement> {
        &mut self.elements
    }

    /// Index of the `idx`-th voltage source among the elements (the MNA
    /// branch ordering).
    pub(crate) fn vsource_indices(&self) -> Vec<usize> {
        self.elements
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e.element, Element::VSource { .. }).then_some(i))
            .collect()
    }

    fn push(&mut self, name: &str, element: Element) {
        self.elements.push(NamedElement {
            name: name.to_owned(),
            element,
        });
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive and finite.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> &mut Self {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive"
        );
        self.push(name, Element::Resistor { a, b, ohms });
        self
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is negative or not finite.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> &mut Self {
        assert!(
            farads.is_finite() && farads >= 0.0,
            "capacitance must be non-negative"
        );
        self.push(name, Element::Capacitor { a, b, farads });
        self
    }

    /// Adds an independent voltage source.
    pub fn vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: Waveform,
    ) -> &mut Self {
        self.push(name, Element::VSource { pos, neg, waveform });
        self
    }

    /// Adds an independent current source.
    pub fn isource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: Waveform,
    ) -> &mut Self {
        self.push(name, Element::ISource { pos, neg, waveform });
        self
    }

    /// Checks every element for parameters the solver cannot handle —
    /// non-finite or out-of-range values that slipped past the builder
    /// asserts (e.g. a parsed deck carrying `Dc(NaN)`, or a programmatic
    /// waveform with an infinite edge time). Solver entry points call
    /// this so degenerate netlists surface as typed errors instead of
    /// NaN-poisoned "converged" solutions or panics.
    ///
    /// # Errors
    ///
    /// [`crate::SpiceError::InvalidNetlist`] naming the first offending
    /// element.
    pub fn validate(&self) -> Result<(), crate::SpiceError> {
        let bad = |name: &str, message: &str| {
            Err(crate::SpiceError::InvalidNetlist {
                element: name.to_owned(),
                message: message.to_owned(),
            })
        };
        for e in &self.elements {
            match &e.element {
                Element::Resistor { ohms, .. } => {
                    if !(ohms.is_finite() && *ohms > 0.0) {
                        return bad(&e.name, "resistance must be positive and finite");
                    }
                }
                Element::Capacitor { farads, .. } => {
                    if !(farads.is_finite() && *farads >= 0.0) {
                        return bad(&e.name, "capacitance must be non-negative and finite");
                    }
                }
                Element::VSource { waveform, .. } | Element::ISource { waveform, .. } => {
                    if !waveform_is_finite(waveform) {
                        return bad(&e.name, "source waveform has a non-finite value");
                    }
                }
                Element::Mosfet(inst) => {
                    if !(inst.width_um.is_finite() && inst.width_um > 0.0) {
                        return bad(&e.name, "MOSFET width must be positive and finite");
                    }
                }
            }
        }
        Ok(())
    }

    /// Adds a MOSFET.
    ///
    /// # Panics
    ///
    /// Panics if `width_um` is not positive and finite.
    pub fn mosfet(
        &mut self,
        name: &str,
        model: MosModel,
        width_um: f64,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
    ) -> &mut Self {
        assert!(
            width_um.is_finite() && width_um > 0.0,
            "width must be positive"
        );
        self.push(
            name,
            Element::Mosfet(MosInstance {
                model,
                width_um,
                drain,
                gate,
                source,
            }),
        );
        self
    }
}

impl Keyed for Waveform {
    fn absorb(&self, kb: KeyBuilder) -> KeyBuilder {
        match self {
            Waveform::Dc(v) => kb.str("dc").f64(*v),
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => kb
                .str("pulse")
                .f64(*v0)
                .f64(*v1)
                .f64(*delay)
                .f64(*rise)
                .f64(*fall)
                .f64(*width)
                .f64(*period),
            Waveform::Pwl(points) => {
                let mut kb = kb.str("pwl").u64(points.len() as u64);
                for (t, v) in points {
                    kb = kb.f64(*t).f64(*v);
                }
                kb
            }
        }
    }
}

/// The canonical cache-key field stream of a netlist: topology, element
/// values and every compact-model parameter, so any change to the deck
/// or to the devices behind it changes the key. This is the single
/// content hash shared by every consumer — the circuit backends, the
/// topology compiler and the serve-layer dedup all absorb a netlist
/// through this impl instead of re-listing its fields.
impl Keyed for Netlist {
    fn absorb(&self, kb: KeyBuilder) -> KeyBuilder {
        let mut kb = kb
            .u64(self.node_count() as u64)
            .u64(self.elements().len() as u64);
        for e in self.elements() {
            kb = kb.str(&e.name);
            kb = match &e.element {
                Element::Resistor { a, b, ohms } => {
                    kb.str("R").u64(*a as u64).u64(*b as u64).f64(*ohms)
                }
                Element::Capacitor { a, b, farads } => {
                    kb.str("C").u64(*a as u64).u64(*b as u64).f64(*farads)
                }
                Element::VSource { pos, neg, waveform } => kb
                    .str("V")
                    .u64(*pos as u64)
                    .u64(*neg as u64)
                    .keyed(waveform),
                Element::ISource { pos, neg, waveform } => kb
                    .str("I")
                    .u64(*pos as u64)
                    .u64(*neg as u64)
                    .keyed(waveform),
                Element::Mosfet(m) => kb
                    .str("M")
                    .u64(m.drain as u64)
                    .u64(m.gate as u64)
                    .u64(m.source as u64)
                    .f64(m.width_um)
                    .str(match m.model.kind {
                        DeviceKind::Nfet => "n",
                        DeviceKind::Pfet => "p",
                    })
                    .f64(m.model.v_th_lin.as_volts())
                    .f64(m.model.dibl)
                    .f64(m.model.m)
                    .f64(m.model.i0.get())
                    .f64(m.model.mu0)
                    .f64(m.model.c_ox_f_per_cm2)
                    .f64(m.model.l_eff.get())
                    .f64(m.model.t_ox.get())
                    .f64(m.model.v_t)
                    .f64(m.model.v_ds_ref.as_volts()),
            };
        }
        kb
    }
}

/// Whether every value a waveform can produce is finite. An infinite
/// `Pulse::period` is the documented "single pulse" encoding and stays
/// legal; every other field must be finite.
fn waveform_is_finite(w: &Waveform) -> bool {
    match w {
        Waveform::Dc(v) => v.is_finite(),
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        } => {
            [*v0, *v1, *delay, *rise, *fall, *width]
                .iter()
                .all(|v| v.is_finite())
                && !period.is_nan()
        }
        Waveform::Pwl(points) => points.iter().all(|(t, v)| t.is_finite() && v.is_finite()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_sane_and_rejects_non_finite() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0));
        net.resistor("R1", a, Netlist::GROUND, 1_000.0);
        assert!(net.validate().is_ok());

        // Builder asserts can't be bypassed for R/C/M, but waveforms
        // accept arbitrary values (e.g. from a parsed deck).
        let mut bad = Netlist::new();
        let b = bad.node("b");
        bad.vsource("Vnan", b, Netlist::GROUND, Waveform::Dc(f64::NAN));
        match bad.validate() {
            Err(crate::SpiceError::InvalidNetlist { element, .. }) => {
                assert_eq!(element, "Vnan");
            }
            other => panic!("expected InvalidNetlist, got {other:?}"),
        }

        let mut bad_pwl = Netlist::new();
        let c = bad_pwl.node("c");
        bad_pwl.isource(
            "Ipwl",
            c,
            Netlist::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (1.0, f64::INFINITY)]),
        );
        assert!(bad_pwl.validate().is_err());

        // A single (infinite-period) pulse is legal.
        let mut single = Netlist::new();
        let d = single.node("d");
        single.vsource(
            "Vp",
            d,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 0.1,
                fall: 0.1,
                width: 0.4,
                period: f64::INFINITY,
            },
        );
        assert!(single.validate().is_ok());
    }

    #[test]
    fn node_names_are_stable() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("b");
        assert_ne!(a, b);
        assert_eq!(n.node("a"), a);
        assert_eq!(n.find_node("b"), Some(b));
        assert_eq!(n.find_node("zz"), None);
        assert_eq!(n.node("gnd"), Netlist::GROUND);
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: f64::INFINITY,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(0.99), 0.0);
        assert!((w.value_at(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(3.0), 1.0);
        assert!((w.value_at(4.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(10.0), 0.0);
    }

    #[test]
    fn periodic_pulse_repeats() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.4,
            period: 1.0,
        };
        assert!((w.value_at(0.3) - w.value_at(1.3)).abs() < 1e-12);
        assert!((w.value_at(0.7) - w.value_at(5.7)).abs() < 1e-12);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)]);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert!((w.value_at(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(w.value_at(2.0), 2.0);
        assert_eq!(w.value_at(9.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn rejects_zero_resistor() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.resistor("R", a, Netlist::GROUND, 0.0);
    }

    #[test]
    fn vsource_indices_in_order() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("b");
        n.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0));
        n.resistor("R", a, b, 100.0);
        n.vsource("V2", b, Netlist::GROUND, Waveform::Dc(2.0));
        assert_eq!(n.vsource_indices(), vec![0, 2]);
    }
}
