//! Transient analysis: fixed-step backward-Euler or trapezoidal
//! integration with capacitor companion models and a Newton solve per
//! time point.

use crate::mna::{CapMode, DcSolution, Solver, SpiceError};
use crate::netlist::{Element, Netlist};

/// Time-integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: L-stable, first order, numerically damped. The
    /// robust choice for stiff subthreshold nets.
    BackwardEuler,
    /// Trapezoidal rule: A-stable, second order; preferred for delay and
    /// energy measurements.
    #[default]
    Trapezoidal,
}

/// Specification of a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSpec {
    /// End time, seconds.
    pub t_stop: f64,
    /// Fixed time step, seconds.
    pub dt: f64,
    /// Integration method.
    pub method: Integrator,
}

impl TransientSpec {
    /// Creates a spec with `steps` uniform steps covering `[0, t_stop]`.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` is not positive or `steps` is zero.
    pub fn with_steps(t_stop: f64, steps: usize, method: Integrator) -> Self {
        assert!(t_stop > 0.0 && steps > 0, "invalid transient spec");
        Self {
            t_stop,
            dt: t_stop / steps as f64,
            method,
        }
    }
}

/// Sampled transient waveforms.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Time points (the first entry is `t = 0`).
    pub time: Vec<f64>,
    /// Node voltages per time point (`voltages[k][node]`).
    pub voltages: Vec<Vec<f64>>,
    /// Voltage-source branch currents per time point, netlist order.
    pub branch_currents: Vec<Vec<f64>>,
    /// Newton iterations consumed per time step (one entry per step, so
    /// `newton_iterations.len() == time.len() - 1`) — the raw material
    /// for solver-effort histograms.
    pub newton_iterations: Vec<usize>,
}

impl TransientResult {
    /// Extracts one node's waveform.
    pub fn node_waveform(&self, node: usize) -> Vec<f64> {
        self.voltages.iter().map(|v| v[node]).collect()
    }

    /// Extracts one branch current's waveform.
    pub fn branch_waveform(&self, branch: usize) -> Vec<f64> {
        self.branch_currents.iter().map(|v| v[branch]).collect()
    }
}

/// Runs a transient analysis. The initial condition is the DC operating
/// point with all waveforms evaluated at `t = 0`.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidTransientSpec`] when the spec cannot
/// produce at least one time step (non-finite or non-positive `dt`, or a
/// `t_stop` shorter than half a step), and propagates solver failures
/// from the initial operating point or any time step.
pub fn transient(net: &Netlist, spec: TransientSpec) -> Result<TransientResult, SpiceError> {
    if !(spec.dt.is_finite() && spec.t_stop.is_finite())
        || spec.dt <= 0.0
        || spec.t_stop <= spec.dt / 2.0
    {
        return Err(SpiceError::InvalidTransientSpec {
            dt: spec.dt,
            t_stop: spec.t_stop,
        });
    }
    net.validate()?;
    let op = crate::mna::dc_operating_point(net)?;
    transient_from(net, spec, &op)
}

/// Runs a transient analysis from a caller-provided initial operating
/// point (useful for warm-started parameter sweeps).
///
/// # Errors
///
/// Propagates [`SpiceError`] from any time step.
pub fn transient_from(
    net: &Netlist,
    spec: TransientSpec,
    initial: &DcSolution,
) -> Result<TransientResult, SpiceError> {
    let mut solver = Solver::new(net);
    let n_v = net.node_count() - 1;
    let dim = solver.dim();

    let mut x = vec![0.0; dim];
    x[..n_v].copy_from_slice(&initial.node_voltages[1..]);
    for (i, &b) in initial.branch_currents.iter().enumerate() {
        x[n_v + i] = b;
    }

    let n_caps = solver.cap_count();
    let mut cap_i_prev = vec![0.0; n_caps];

    let steps = (spec.t_stop / spec.dt).round() as usize;
    let mut time = Vec::with_capacity(steps + 1);
    let mut voltages = Vec::with_capacity(steps + 1);
    let mut branches = Vec::with_capacity(steps + 1);
    let mut newton_iterations = Vec::with_capacity(steps);

    let push = |t: f64,
                x: &[f64],
                time: &mut Vec<f64>,
                voltages: &mut Vec<Vec<f64>>,
                branches: &mut Vec<Vec<f64>>| {
        time.push(t);
        let mut v = Vec::with_capacity(n_v + 1);
        v.push(0.0);
        v.extend_from_slice(&x[..n_v]);
        voltages.push(v);
        branches.push(x[n_v..].to_vec());
    };
    push(0.0, &x, &mut time, &mut voltages, &mut branches);

    let factor = match spec.method {
        Integrator::BackwardEuler => 1.0 / spec.dt,
        Integrator::Trapezoidal => 2.0 / spec.dt,
    };

    let mut v_prev: Vec<f64> = x[..n_v].to_vec();
    for step in 1..=steps {
        let t = step as f64 * spec.dt;
        solver.time = t;
        let caps = CapMode::Companion {
            factor,
            v_prev: &v_prev,
            i_prev: &cap_i_prev,
        };
        let (x_new, iters) = solver.newton(x.clone(), caps)?;
        x = x_new;
        newton_iterations.push(iters);

        // Update capacitor history currents.
        let mut cap_idx = 0usize;
        for named in net.elements() {
            if let Element::Capacitor { a, b, farads } = &named.element {
                let v_now = node_v(&x, n_v, *a) - node_v(&x, n_v, *b);
                let v_old = node_v_prev(&v_prev, *a) - node_v_prev(&v_prev, *b);
                // The companion residual is `g·(v − v_prev) − i_prev`.
                // Backward Euler has no current history (i_prev stays 0);
                // trapezoidal carries i_new = 2C/h·Δv − i_old.
                if spec.method == Integrator::Trapezoidal {
                    cap_i_prev[cap_idx] = factor * farads * (v_now - v_old) - cap_i_prev[cap_idx];
                }
                cap_idx += 1;
            }
        }
        v_prev.copy_from_slice(&x[..n_v]);
        push(t, &x, &mut time, &mut voltages, &mut branches);
    }

    Ok(TransientResult {
        time,
        voltages,
        branch_currents: branches,
        newton_iterations,
    })
}

#[inline]
fn node_v(x: &[f64], n_v: usize, node: usize) -> f64 {
    debug_assert!(node == 0 || node - 1 < n_v);
    if node == 0 {
        0.0
    } else {
        x[node - 1]
    }
}

#[inline]
fn node_v_prev(v_prev: &[f64], node: usize) -> f64 {
    if node == 0 {
        0.0
    } else {
        v_prev[node - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    /// RC charging: v(t) = V·(1 − e^{−t/RC}).
    fn rc_circuit() -> (Netlist, usize) {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource(
            "V1",
            a,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 1.0e-12,
                fall: 1.0e-12,
                width: 1.0,
                period: f64::INFINITY,
            },
        );
        net.resistor("R", a, b, 1_000.0);
        net.capacitor("C", b, Netlist::GROUND, 1.0e-9); // τ = 1 µs
        (net, b)
    }

    #[test]
    fn rc_step_response_trapezoidal() {
        let (net, out) = rc_circuit();
        let spec = TransientSpec::with_steps(5.0e-6, 500, Integrator::Trapezoidal);
        let res = transient(&net, spec).unwrap();
        let tau = 1.0e-6;
        for (k, &t) in res.time.iter().enumerate() {
            if t < 5.0e-8 {
                continue; // skip the source edge
            }
            let want = 1.0 - (-t / tau).exp();
            let got = res.voltages[k][out];
            assert!((got - want).abs() < 5e-3, "t={t:e}: got {got}, want {want}");
        }
    }

    #[test]
    fn rc_step_response_backward_euler() {
        let (net, out) = rc_circuit();
        let spec = TransientSpec::with_steps(5.0e-6, 2000, Integrator::BackwardEuler);
        let res = transient(&net, spec).unwrap();
        let last = *res.voltages.last().unwrap().get(out).unwrap();
        assert!((last - (1.0 - (-5.0f64).exp())).abs() < 1e-2);
    }

    #[test]
    fn trapezoidal_beats_backward_euler_accuracy() {
        // Smooth ramp input (a step edge would alias by h/2 under the
        // trapezoidal rule): v_in = k·t, exact response
        // v(t) = k·(t − τ·(1 − e^{−t/τ})).
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource(
            "V1",
            a,
            Netlist::GROUND,
            Waveform::Pwl(vec![(0.0, 0.0), (3.0e-6, 3.0)]),
        );
        net.resistor("R", a, b, 1_000.0);
        net.capacitor("C", b, Netlist::GROUND, 1.0e-9);
        let tau = 1.0e-6;
        let k = 1.0e6;
        let exact = |t: f64| k * (t - tau * (1.0 - (-t / tau).exp()));
        let err = |method| {
            let spec = TransientSpec::with_steps(3.0e-6, 150, method);
            let res = transient(&net, spec).unwrap();
            res.time
                .iter()
                .zip(&res.voltages)
                .map(|(&t, v)| (v[b] - exact(t)).abs())
                .fold(0.0f64, f64::max)
        };
        let e_trap = err(Integrator::Trapezoidal);
        let e_be = err(Integrator::BackwardEuler);
        assert!(
            e_trap < 0.2 * e_be,
            "trapezoidal {e_trap:e} should beat BE {e_be:e}"
        );
    }

    #[test]
    fn capacitor_blocks_dc_in_steady_state() {
        let (net, _) = rc_circuit();
        let spec = TransientSpec::with_steps(20.0e-6, 2000, Integrator::Trapezoidal);
        let res = transient(&net, spec).unwrap();
        // At 20 τ the branch current through the source is ~0.
        let i_last = res.branch_currents.last().unwrap()[0];
        assert!(i_last.abs() < 1e-8, "got {i_last}");
    }

    #[test]
    fn degenerate_transient_specs_are_typed_errors() {
        let (net, _) = rc_circuit();
        for (dt, t_stop) in [
            (0.0, 1.0e-6),
            (-1.0e-9, 1.0e-6),
            (f64::NAN, 1.0e-6),
            (1.0e-6, f64::INFINITY),
            (1.0e-6, 0.0),
        ] {
            let spec = TransientSpec {
                t_stop,
                dt,
                method: Integrator::Trapezoidal,
            };
            assert!(
                matches!(
                    transient(&net, spec),
                    Err(SpiceError::InvalidTransientSpec { .. })
                ),
                "dt={dt}, t_stop={t_stop} should be rejected"
            );
        }
    }

    #[test]
    fn node_and_branch_waveform_extraction() {
        let (net, out) = rc_circuit();
        let spec = TransientSpec::with_steps(1.0e-6, 100, Integrator::Trapezoidal);
        let res = transient(&net, spec).unwrap();
        assert_eq!(res.node_waveform(out).len(), res.time.len());
        assert_eq!(res.branch_waveform(0).len(), res.time.len());
    }
}
