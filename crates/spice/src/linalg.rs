//! Dense linear algebra for the MNA solver.
//!
//! Circuit matrices in this workspace are small (tens of unknowns), so a
//! dense LU with partial pivoting is both the simplest and the fastest
//! appropriate choice. The sparse machinery for large PDE systems lives in
//! `subvt-tcad`, not here.
//!
//! The factorization is split out as [`LuFactors`] so Newton iterations
//! and sweep/sample points can reuse work: factor once, re-solve for any
//! number of right-hand sides, and — because consecutive solves share the
//! matrix *structure* and change only values — re-factor with the cached
//! pivot order instead of searching for pivots again. A cached-pivot
//! refactorization is rejected (so the caller falls back to a full
//! factorization) whenever a remembered pivot no longer dominates its
//! column, which keeps the reuse numerically safe.

#![allow(clippy::needless_range_loop)] // indexed loops mirror the textbook algorithms

/// A dense, row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0×0 (paired with [`DenseMatrix::len`] per
    /// the usual container contract).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Reads entry `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    /// Adds into entry `(row, col)` — the natural MNA "stamp" operation.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Copies another matrix of the same dimension into this one without
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, other: &DenseMatrix) {
        assert_eq!(self.n, other.n, "dimension mismatch in copy_from");
        self.data.copy_from_slice(&other.data);
    }
}

/// Error from a singular (or numerically singular) system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Elimination column at which no usable pivot was found. Columns are
    /// not permuted, so this is also the index of the unknown whose
    /// equation set has no independent pivot.
    pub column: usize,
}

impl core::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "matrix is singular at elimination column {}",
            self.column
        )
    }
}

impl std::error::Error for SingularMatrixError {}

/// Pivots below this magnitude are treated as numerically singular.
const PIVOT_MIN_ABS: f64 = 1e-300;

/// A cached pivot must be at least this fraction of its column's largest
/// remaining entry for a value-only refactorization to be accepted
/// (threshold pivoting — the classic fast-SPICE reuse guard).
const CACHED_PIVOT_MIN_RATIO: f64 = 0.1;

/// A reusable LU factorization with partial (row) pivoting.
///
/// Three entry points, in decreasing cost order:
///
/// 1. [`LuFactors::factor`] — full factorization with a fresh pivot
///    search (what [`solve_in_place`] always did).
/// 2. [`LuFactors::refactor_cached`] — value-only refactorization
///    reusing the pivot permutation cached by the last successful
///    [`LuFactors::factor`]; rejected when a cached pivot is degenerate.
/// 3. [`LuFactors::solve`] — forward/back substitution for a new
///    right-hand side against the current factors.
///
/// The elimination arithmetic is identical, operation for operation, to
/// the historical one-shot `solve_in_place`, so factoring once and
/// solving is bitwise-identical to the fused solve.
#[derive(Debug, Clone, Default)]
pub struct LuFactors {
    n: usize,
    /// Combined storage: `U` on and above the diagonal (in permuted row
    /// order), the `L` multipliers strictly below it.
    lu: DenseMatrix,
    /// `perm[col]` is the original row index eliminated at column `col`.
    perm: Vec<usize>,
    factored: bool,
}

impl Default for DenseMatrix {
    fn default() -> Self {
        DenseMatrix::zeros(0)
    }
}

impl LuFactors {
    /// Creates an empty workspace; the first [`LuFactors::factor`] sizes
    /// it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a factorization is currently held.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Dimension of the held factorization (0 before the first factor).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the workspace is empty (no factorization sized yet).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Copies `a` into the workspace, resizing if the dimension changed.
    fn load(&mut self, a: &DenseMatrix) {
        if self.n != a.len() {
            self.n = a.len();
            self.lu = a.clone();
            self.perm = (0..self.n).collect();
        } else {
            self.lu.copy_from(a);
        }
    }

    /// Eliminates column `col` using pivot row `perm[col]`, storing the
    /// multipliers in place of the eliminated entries. The arithmetic and
    /// traversal order mirror the historical `solve_in_place` exactly.
    fn eliminate(&mut self, col: usize) {
        let n = self.n;
        let prow = self.perm[col];
        let pivot = self.lu.get(prow, col);
        for r in (col + 1)..n {
            let row = self.perm[r];
            let factor = self.lu.get(row, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            self.lu.set(row, col, factor);
            for k in (col + 1)..n {
                let v = self.lu.get(row, k) - factor * self.lu.get(prow, k);
                self.lu.set(row, k, v);
            }
        }
    }

    /// Full factorization of `a` with a fresh partial-pivot search. The
    /// pivot permutation is cached for later
    /// [`LuFactors::refactor_cached`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a pivot below `1e-300` is
    /// encountered; the workspace is left unfactored.
    pub fn factor(&mut self, a: &DenseMatrix) -> Result<(), SingularMatrixError> {
        self.load(a);
        self.factored = false;
        let n = self.n;
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        for col in 0..n {
            let mut best = col;
            let mut best_val = self.lu.get(self.perm[col], col).abs();
            for (r, &p) in self.perm.iter().enumerate().skip(col + 1) {
                let v = self.lu.get(p, col).abs();
                if v > best_val {
                    best = r;
                    best_val = v;
                }
            }
            if best_val < PIVOT_MIN_ABS {
                return Err(SingularMatrixError { column: col });
            }
            self.perm.swap(col, best);
            self.eliminate(col);
        }
        self.factored = true;
        Ok(())
    }

    /// Value-only refactorization reusing the cached pivot order.
    ///
    /// Intended for matrices that share structure with the last
    /// [`LuFactors::factor`] call — consecutive Newton iterations, sweep
    /// points, Monte-Carlo samples — where values drift but the dominant
    /// entries stay put. The pivot *search* (and its data movement) is
    /// skipped entirely.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when no factorization is cached,
    /// the dimension changed, or a cached pivot no longer passes the
    /// threshold-pivoting guard (it fell below `1e-300`, or below
    /// [`CACHED_PIVOT_MIN_RATIO`] of its column's largest remaining
    /// entry). Callers should respond with a full [`LuFactors::factor`].
    pub fn refactor_cached(&mut self, a: &DenseMatrix) -> Result<(), SingularMatrixError> {
        if !self.factored || self.n != a.len() {
            return Err(SingularMatrixError { column: 0 });
        }
        self.lu.copy_from(a);
        self.factored = false;
        let n = self.n;
        for col in 0..n {
            let pivot = self.lu.get(self.perm[col], col).abs();
            let mut col_max = pivot;
            for r in (col + 1)..n {
                col_max = col_max.max(self.lu.get(self.perm[r], col).abs());
            }
            if pivot < PIVOT_MIN_ABS || pivot < CACHED_PIVOT_MIN_RATIO * col_max {
                return Err(SingularMatrixError { column: col });
            }
            self.eliminate(col);
        }
        self.factored = true;
        Ok(())
    }

    /// Solves `A·x = b` against the held factors. `b` is overwritten with
    /// forward-substitution scratch.
    ///
    /// # Panics
    ///
    /// Panics if no factorization is held or `b.len()` differs from the
    /// factored dimension.
    pub fn solve(&self, b: &mut [f64]) -> Vec<f64> {
        assert!(self.factored, "solve() requires a successful factor()");
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length must match matrix dimension");

        // Forward substitution: replay the stored multipliers in the
        // exact order the fused elimination applied them.
        for col in 0..n {
            let prow = self.perm[col];
            for r in (col + 1)..n {
                let row = self.perm[r];
                let factor = self.lu.get(row, col);
                if factor == 0.0 {
                    continue;
                }
                b[row] -= factor * b[prow];
            }
        }

        // Back substitution.
        let mut x = vec![0.0; n];
        for col in (0..n).rev() {
            let row = self.perm[col];
            let mut sum = b[row];
            for k in (col + 1)..n {
                sum -= self.lu.get(row, k) * x[k];
            }
            x[col] = sum / self.lu.get(row, col);
        }
        x
    }
}

/// Solves `A·x = b` by LU decomposition with partial pivoting. `b` is
/// overwritten with factorization scratch; `a` is read but no longer
/// consumed. One-shot convenience over [`LuFactors`] — identical
/// arithmetic, so results match the factored path bit for bit.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when a pivot below `1e-300` is
/// encountered.
///
/// # Panics
///
/// Panics if `b.len()` differs from the matrix dimension.
pub fn solve_in_place(a: &DenseMatrix, b: &mut [f64]) -> Result<Vec<f64>, SingularMatrixError> {
    assert_eq!(b.len(), a.len(), "rhs length must match matrix dimension");
    let mut lu = LuFactors::new();
    lu.factor(a)?;
    Ok(lu.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn from_rows(rows: &[&[f64]]) -> DenseMatrix {
        let n = rows.len();
        let mut m = DenseMatrix::zeros(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n);
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// SplitMix64 step — a tiny deterministic generator so the
    /// property-style sweeps below need no external crate.
    fn next_u64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [-1, 1).
    fn next_f64(state: &mut u64) -> f64 {
        (next_u64(state) >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }

    /// A random diagonally-dominant matrix with an MNA-like shape: a
    /// strongly dominant "conductance" block plus off-diagonal coupling.
    fn mna_shaped(n: usize, state: &mut u64) -> DenseMatrix {
        let mut a = DenseMatrix::zeros(n);
        for i in 0..n {
            let mut dominance = 1.0;
            for j in 0..n {
                if i != j {
                    let v = next_f64(state);
                    a.set(i, j, v);
                    dominance += v.abs();
                }
            }
            a.set(i, i, dominance);
        }
        a
    }

    fn rand_rhs(n: usize, state: &mut u64) -> Vec<f64> {
        (0..n).map(|_| next_f64(state) * 10.0).collect()
    }

    #[test]
    fn solves_identity() {
        let a = from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut b = vec![3.0, -4.0];
        let x = solve_in_place(&a, &mut b).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2_requiring_pivot() {
        // First pivot is zero; partial pivoting must handle it.
        let a = from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
        let mut b = vec![4.0, 3.0];
        let x = solve_in_place(&a, &mut b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3_hand_case() {
        let a = from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let mut b = vec![8.0, -11.0, -3.0];
        let x = solve_in_place(&a, &mut b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_singular() {
        let a = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut b = vec![1.0, 2.0];
        assert!(solve_in_place(&a, &mut b).is_err());
        let mut lu = LuFactors::new();
        assert!(lu.factor(&a).is_err());
        assert!(!lu.is_factored());
    }

    #[test]
    fn len_and_is_empty_agree() {
        assert!(DenseMatrix::zeros(0).is_empty());
        let m = DenseMatrix::zeros(3);
        assert!(!m.is_empty());
        assert_eq!(m.len(), 3);
        let lu = LuFactors::new();
        assert!(lu.is_empty());
        assert_eq!(lu.len(), 0);
    }

    #[test]
    fn stamp_accumulates() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 3.5);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn factor_then_solve_is_bitwise_identical_to_solve_in_place() {
        // Property sweep: over random general and MNA-shaped systems, the
        // split factor/solve path must reproduce the fused solve exactly
        // (same arithmetic in the same order → identical bits, which is
        // stronger than the 1e-12 the spec asks for).
        let mut state = 0x5eed_cafe_f00du64;
        for trial in 0..40 {
            let n = 1 + (trial % 9);
            let a = if trial % 2 == 0 {
                mna_shaped(n, &mut state)
            } else {
                // General (possibly pivot-requiring) random matrix.
                let mut m = DenseMatrix::zeros(n);
                for i in 0..n {
                    for j in 0..n {
                        m.set(i, j, next_f64(&mut state) * 3.0);
                    }
                }
                m
            };
            let rhs = rand_rhs(n, &mut state);

            let mut b_fused = rhs.clone();
            let fused = match solve_in_place(&a, &mut b_fused) {
                Ok(x) => x,
                Err(_) => continue, // random matrix degenerate — skip
            };

            let mut lu = LuFactors::new();
            lu.factor(&a).unwrap();
            let mut b_split = rhs.clone();
            let split = lu.solve(&mut b_split);

            for (f, s) in fused.iter().zip(&split) {
                assert_eq!(f.to_bits(), s.to_bits(), "trial {trial}");
            }
        }
    }

    #[test]
    fn factor_once_resolves_many_rhs() {
        let mut state = 0xabcd_1234u64;
        let n = 7;
        let a = mna_shaped(n, &mut state);
        let mut lu = LuFactors::new();
        lu.factor(&a).unwrap();
        for _ in 0..10 {
            let rhs = rand_rhs(n, &mut state);
            let mut b = rhs.clone();
            let x = lu.solve(&mut b);
            let mut b_ref = rhs.clone();
            let x_ref = solve_in_place(&a, &mut b_ref).unwrap();
            for (got, want) in x.iter().zip(&x_ref) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn cached_pivot_refactor_matches_full_pivoting() {
        // Diagonally-dominant MNA-shaped matrices keep their pivot order
        // under value drift, so the cached-pivot refactorization must
        // agree with a fresh full-pivoting factorization to 1e-12.
        let mut state = 0x00c0_ffeeu64;
        for trial in 0..25 {
            let n = 2 + (trial % 7);
            let a0 = mna_shaped(n, &mut state);
            let mut lu = LuFactors::new();
            lu.factor(&a0).unwrap();

            // Drift every value by a few percent, preserving dominance.
            let mut a1 = a0.clone();
            for i in 0..n {
                for j in 0..n {
                    let scale = 1.0 + 0.05 * next_f64(&mut state);
                    a1.set(i, j, a0.get(i, j) * scale);
                }
            }
            lu.refactor_cached(&a1)
                .expect("dominant pivots must be reusable");

            let rhs = rand_rhs(n, &mut state);
            let mut b = rhs.clone();
            let x_cached = lu.solve(&mut b);
            let mut b_ref = rhs.clone();
            let x_full = solve_in_place(&a1, &mut b_ref).unwrap();
            for (c, f) in x_cached.iter().zip(&x_full) {
                let scale = f.abs().max(1.0);
                assert!(
                    (c - f).abs() <= 1e-12 * scale,
                    "trial {trial}: cached {c} vs full {f}"
                );
            }
        }
    }

    #[test]
    fn cached_pivot_rejected_when_dominance_moves() {
        // Factor with row 0 dominant in column 0, then hand the cached
        // pivots a matrix where row 1 dominates: the threshold guard must
        // reject the reuse instead of silently amplifying error.
        let a0 = from_rows(&[&[10.0, 1.0], &[1.0, 10.0]]);
        let mut lu = LuFactors::new();
        lu.factor(&a0).unwrap();
        let a1 = from_rows(&[&[0.01, 1.0], &[10.0, 10.0]]);
        assert!(lu.refactor_cached(&a1).is_err());
        // And a full factor recovers.
        lu.factor(&a1).unwrap();
        let mut b = vec![1.0, 2.0];
        let x = lu.solve(&mut b);
        assert!((0.01 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-10);
        assert!((10.0 * x[0] + 10.0 * x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn refactor_without_factor_is_rejected() {
        let a = from_rows(&[&[1.0]]);
        let mut lu = LuFactors::new();
        assert!(lu.refactor_cached(&a).is_err());
        lu.factor(&a).unwrap();
        // Dimension change also invalidates the cached pivots.
        let bigger = from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(lu.refactor_cached(&bigger).is_err());
        lu.factor(&bigger).unwrap();
        let mut b = vec![5.0, 6.0];
        assert_eq!(lu.solve(&mut b), vec![5.0, 6.0]);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn residual_small_for_diagonally_dominant(
            seed in proptest::collection::vec(-1.0f64..1.0, 25),
            rhs in proptest::collection::vec(-10.0f64..10.0, 5),
        ) {
            let n = 5;
            let mut a = DenseMatrix::zeros(n);
            for i in 0..n {
                let mut diag = 1.0;
                for j in 0..n {
                    if i != j {
                        let v = seed[i * n + j];
                        a.set(i, j, v);
                        diag += v.abs();
                    }
                }
                a.set(i, i, diag);
            }
            let mut b = rhs.clone();
            let x = solve_in_place(&a, &mut b).unwrap();
            for i in 0..n {
                let mut ax = 0.0;
                for j in 0..n {
                    ax += a.get(i, j) * x[j];
                }
                prop_assert!((ax - rhs[i]).abs() < 1e-8);
            }
        }
    }
}
