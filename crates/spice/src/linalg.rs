//! Dense linear algebra for the MNA solver.
//!
//! Circuit matrices in this workspace are small (tens of unknowns), so a
//! dense LU with partial pivoting is both the simplest and the fastest
//! appropriate choice. The sparse machinery for large PDE systems lives in
//! `subvt-tcad`, not here.

#![allow(clippy::needless_range_loop)] // indexed loops mirror the textbook algorithms

/// A dense, row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0×0 (paired with [`DenseMatrix::len`] per
    /// the usual container contract).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Reads entry `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    /// Adds into entry `(row, col)` — the natural MNA "stamp" operation.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }
}

/// Error from a singular (or numerically singular) system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Elimination column at which no usable pivot was found.
    pub column: usize,
}

impl core::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "matrix is singular at elimination column {}",
            self.column
        )
    }
}

impl std::error::Error for SingularMatrixError {}

/// Solves `A·x = b` in place by LU decomposition with partial pivoting.
/// `a` and `b` are consumed (overwritten with factorization scratch).
///
/// # Errors
///
/// Returns [`SingularMatrixError`] when a pivot below `1e-300` is
/// encountered.
///
/// # Panics
///
/// Panics if `b.len()` differs from the matrix dimension.
pub fn solve_in_place(a: &mut DenseMatrix, b: &mut [f64]) -> Result<Vec<f64>, SingularMatrixError> {
    let n = a.len();
    assert_eq!(b.len(), n, "rhs length must match matrix dimension");
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Partial pivot.
        let mut best = col;
        let mut best_val = a.get(perm[col], col).abs();
        for (r, &p) in perm.iter().enumerate().skip(col + 1) {
            let v = a.get(p, col).abs();
            if v > best_val {
                best = r;
                best_val = v;
            }
        }
        if best_val < 1e-300 {
            return Err(SingularMatrixError { column: col });
        }
        perm.swap(col, best);
        let prow = perm[col];
        let pivot = a.get(prow, col);
        for &row in perm.iter().skip(col + 1) {
            let factor = a.get(row, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            a.set(row, col, 0.0);
            for k in (col + 1)..n {
                let v = a.get(row, k) - factor * a.get(prow, k);
                a.set(row, k, v);
            }
            b[row] -= factor * b[prow];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let row = perm[col];
        let mut sum = b[row];
        for k in (col + 1)..n {
            sum -= a.get(row, k) * x[k];
        }
        x[col] = sum / a.get(row, col);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn from_rows(rows: &[&[f64]]) -> DenseMatrix {
        let n = rows.len();
        let mut m = DenseMatrix::zeros(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n);
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    #[test]
    fn solves_identity() {
        let mut a = from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut b = vec![3.0, -4.0];
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2_requiring_pivot() {
        // First pivot is zero; partial pivoting must handle it.
        let mut a = from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
        let mut b = vec![4.0, 3.0];
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3_hand_case() {
        let mut a = from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let mut b = vec![8.0, -11.0, -3.0];
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_singular() {
        let mut a = from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut b = vec![1.0, 2.0];
        assert!(solve_in_place(&mut a, &mut b).is_err());
    }

    #[test]
    fn len_and_is_empty_agree() {
        assert!(DenseMatrix::zeros(0).is_empty());
        let m = DenseMatrix::zeros(3);
        assert!(!m.is_empty());
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn stamp_accumulates() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 3.5);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn residual_small_for_diagonally_dominant(
            seed in proptest::collection::vec(-1.0f64..1.0, 25),
            rhs in proptest::collection::vec(-10.0f64..10.0, 5),
        ) {
            let n = 5;
            let mut a = DenseMatrix::zeros(n);
            for i in 0..n {
                let mut diag = 1.0;
                for j in 0..n {
                    if i != j {
                        let v = seed[i * n + j];
                        a.set(i, j, v);
                        diag += v.abs();
                    }
                }
                a.set(i, i, diag);
            }
            let a_copy = a.clone();
            let mut b = rhs.clone();
            let x = solve_in_place(&mut a, &mut b).unwrap();
            for i in 0..n {
                let mut ax = 0.0;
                for j in 0..n {
                    ax += a_copy.get(i, j) * x[j];
                }
                prop_assert!((ax - rhs[i]).abs() < 1e-8);
            }
        }
    }
}
