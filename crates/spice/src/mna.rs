//! Modified nodal analysis: residual assembly, Newton–Raphson DC solve
//! with source stepping, and DC sweeps.
//!
//! Unknown vector layout: `x = [v_1 … v_{N−1}, i_1 … i_M]` — node voltages
//! (ground excluded) followed by one branch current per voltage source.
//! Branch current sign convention: positive current flows from the `pos`
//! terminal *through the source* to `neg` (passive convention), so a
//! supply delivering power has a negative branch current.

use subvt_physics::MosModel;
use subvt_units::Volts;

use crate::linalg::{solve_in_place, DenseMatrix};
use crate::netlist::{Element, MosInstance, Netlist};

/// Minimum conductance from every node to ground, for convergence aid.
const GMIN: f64 = 1.0e-12;
/// Maximum Newton voltage update per iteration (damping).
const MAX_DV: f64 = 0.3;
/// Newton voltage-update convergence tolerance.
const VTOL: f64 = 1.0e-10;
/// Newton residual (KCL) convergence tolerance, amps.
const ITOL: f64 = 1.0e-13;
/// Maximum Newton iterations per solve.
const MAX_NEWTON: usize = 200;

/// Errors from circuit analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The MNA Jacobian was singular — usually a floating node or a
    /// voltage-source loop.
    SingularMatrix {
        /// Elimination column where the failure occurred.
        column: usize,
    },
    /// Newton failed to converge even with source stepping.
    NoConvergence {
        /// Iterations consumed.
        iterations: usize,
        /// Final residual infinity-norm (amps).
        residual: f64,
    },
    /// A named source was not found in the netlist.
    UnknownSource(String),
    /// A netlist element carries a non-physical value (non-finite or
    /// out-of-range), detected by [`Netlist::validate`] before solving.
    InvalidNetlist {
        /// Name of the offending element.
        element: String,
        /// What was wrong with it.
        message: String,
    },
    /// A transient specification that cannot produce any time points.
    InvalidTransientSpec {
        /// Requested time step, seconds.
        dt: f64,
        /// Requested stop time, seconds.
        t_stop: f64,
    },
}

impl core::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpiceError::SingularMatrix { column } => {
                write!(f, "singular MNA matrix at column {column} (floating node?)")
            }
            SpiceError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "newton failed after {iterations} iterations (residual {residual:e} A)"
                )
            }
            SpiceError::UnknownSource(name) => write!(f, "unknown source `{name}`"),
            SpiceError::InvalidNetlist { element, message } => {
                write!(f, "invalid netlist element `{element}`: {message}")
            }
            SpiceError::InvalidTransientSpec { dt, t_stop } => {
                write!(
                    f,
                    "invalid transient spec: dt = {dt:e} s, t_stop = {t_stop:e} s"
                )
            }
        }
    }
}

impl std::error::Error for SpiceError {}

/// How capacitors are treated during assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CapMode<'a> {
    /// DC: capacitors are open circuits.
    Open,
    /// Companion model: conductance `factor·C` with a history current.
    /// `v_prev` holds the previous-step node voltages and `i_prev` the
    /// previous-step capacitor currents (trapezoidal only; zeros for BE).
    Companion {
        /// Conductance multiplier (`1/h` for BE, `2/h` for trapezoidal).
        factor: f64,
        /// Node voltages at the previous accepted time point.
        v_prev: &'a [f64],
        /// Capacitor branch currents at the previous time point.
        i_prev: &'a [f64],
    },
}

/// A converged operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    /// Node voltages, indexed by [`crate::netlist::NodeId`] (entry 0 is
    /// ground and always 0).
    pub node_voltages: Vec<f64>,
    /// Branch currents of voltage sources, in netlist order.
    pub branch_currents: Vec<f64>,
    /// Newton iterations consumed.
    pub iterations: usize,
}

impl DcSolution {
    /// Voltage at a node.
    pub fn voltage(&self, node: usize) -> Volts {
        Volts::new(self.node_voltages[node])
    }
}

/// Internal solver state shared by DC and transient analyses.
pub(crate) struct Solver<'a> {
    net: &'a Netlist,
    n_nodes: usize,
    vsrc_rows: Vec<usize>,
    /// Scale factor applied to all independent sources (source stepping).
    pub(crate) source_scale: f64,
    /// Evaluation time for waveforms.
    pub(crate) time: f64,
    /// Minimum conductance to ground on every node. Defaults to [`GMIN`];
    /// raised temporarily during gmin stepping.
    pub(crate) gmin: f64,
    jac: DenseMatrix,
}

impl<'a> Solver<'a> {
    pub(crate) fn new(net: &'a Netlist) -> Self {
        let n_nodes = net.node_count();
        let vsrc_rows = net.vsource_indices();
        let dim = n_nodes - 1 + vsrc_rows.len();
        Self {
            net,
            n_nodes,
            vsrc_rows,
            source_scale: 1.0,
            time: 0.0,
            gmin: GMIN,
            jac: DenseMatrix::zeros(dim),
        }
    }

    pub(crate) fn dim(&self) -> usize {
        self.n_nodes - 1 + self.vsrc_rows.len()
    }

    /// Number of capacitors (for transient history state).
    pub(crate) fn cap_count(&self) -> usize {
        self.net
            .elements()
            .iter()
            .filter(|e| matches!(e.element, Element::Capacitor { .. }))
            .count()
    }

    #[inline]
    fn vix(node: usize) -> Option<usize> {
        (node > 0).then(|| node - 1)
    }

    /// Node voltage from the unknown vector (ground = 0).
    #[inline]
    fn v(x: &[f64], node: usize) -> f64 {
        if node == 0 {
            0.0
        } else {
            x[node - 1]
        }
    }

    /// MOSFET drain current (into the drain terminal) in the device's
    /// magnitude frame, amps.
    fn mos_current(inst: &MosInstance, vd: f64, vg: f64, vs: f64) -> f64 {
        let model: &MosModel = &inst.model;
        let (vgs, vds, sign) = match model.kind {
            subvt_physics::DeviceKind::Nfet => (vg - vs, vd - vs, 1.0),
            subvt_physics::DeviceKind::Pfet => (vs - vg, vs - vd, -1.0),
        };
        sign * inst.width_um * model.drain_current(Volts::new(vgs), Volts::new(vds)).get()
    }

    /// Assembles the Newton residual `f` and Jacobian at state `x`.
    /// Returns the residual; the Jacobian is left in `self.jac`.
    pub(crate) fn assemble(&mut self, x: &[f64], caps: CapMode<'_>) -> Vec<f64> {
        let dim = self.dim();
        let mut f = vec![0.0; dim];
        self.jac.clear();
        let jac = &mut self.jac;

        // g_min to ground on every node.
        let gmin = self.gmin;
        for n in 1..self.n_nodes {
            let i = n - 1;
            f[i] += gmin * x[i];
            jac.add(i, i, gmin);
        }

        let mut branch = 0usize;
        let mut cap_idx = 0usize;
        for named in self.net.elements() {
            match &named.element {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    let i = g * (Self::v(x, *a) - Self::v(x, *b));
                    if let Some(ia) = Self::vix(*a) {
                        f[ia] += i;
                        jac.add(ia, ia, g);
                        if let Some(ib) = Self::vix(*b) {
                            jac.add(ia, ib, -g);
                        }
                    }
                    if let Some(ib) = Self::vix(*b) {
                        f[ib] -= i;
                        jac.add(ib, ib, g);
                        if let Some(ia) = Self::vix(*a) {
                            jac.add(ib, ia, -g);
                        }
                    }
                }
                Element::Capacitor { a, b, farads } => {
                    if let CapMode::Companion {
                        factor,
                        v_prev,
                        i_prev,
                    } = caps
                    {
                        let g = factor * farads;
                        let v_now = Self::v(x, *a) - Self::v(x, *b);
                        let vp = {
                            let va = if *a == 0 { 0.0 } else { v_prev[*a - 1] };
                            let vb = if *b == 0 { 0.0 } else { v_prev[*b - 1] };
                            va - vb
                        };
                        // BE: i = (C/h)(v − v_prev); trapezoidal adds the
                        // previous current: i = (2C/h)(v − v_prev) − i_prev.
                        let i = g * (v_now - vp) - i_prev[cap_idx];
                        if let Some(ia) = Self::vix(*a) {
                            f[ia] += i;
                            jac.add(ia, ia, g);
                            if let Some(ib) = Self::vix(*b) {
                                jac.add(ia, ib, -g);
                            }
                        }
                        if let Some(ib) = Self::vix(*b) {
                            f[ib] -= i;
                            jac.add(ib, ib, g);
                            if let Some(ia) = Self::vix(*a) {
                                jac.add(ib, ia, -g);
                            }
                        }
                    }
                    cap_idx += 1;
                }
                Element::VSource { pos, neg, waveform } => {
                    let row = self.n_nodes - 1 + branch;
                    let value = self.source_scale * waveform.value_at(self.time);
                    let i_br = x[row];
                    if let Some(ip) = Self::vix(*pos) {
                        f[ip] += i_br;
                        jac.add(ip, row, 1.0);
                    }
                    if let Some(in_) = Self::vix(*neg) {
                        f[in_] -= i_br;
                        jac.add(in_, row, -1.0);
                    }
                    f[row] = Self::v(x, *pos) - Self::v(x, *neg) - value;
                    if let Some(ip) = Self::vix(*pos) {
                        jac.add(row, ip, 1.0);
                    }
                    if let Some(in_) = Self::vix(*neg) {
                        jac.add(row, in_, -1.0);
                    }
                    branch += 1;
                }
                Element::ISource { pos, neg, waveform } => {
                    let value = self.source_scale * waveform.value_at(self.time);
                    // Current flows pos → neg through the source.
                    if let Some(ip) = Self::vix(*pos) {
                        f[ip] += value;
                    }
                    if let Some(in_) = Self::vix(*neg) {
                        f[in_] -= value;
                    }
                }
                Element::Mosfet(inst) => {
                    let (vd, vg, vs) = (
                        Self::v(x, inst.drain),
                        Self::v(x, inst.gate),
                        Self::v(x, inst.source),
                    );
                    let id = Self::mos_current(inst, vd, vg, vs);
                    const H: f64 = 1.0e-6;
                    let g_d = (Self::mos_current(inst, vd + H, vg, vs) - id) / H;
                    let g_g = (Self::mos_current(inst, vd, vg + H, vs) - id) / H;
                    let g_s = (Self::mos_current(inst, vd, vg, vs + H) - id) / H;
                    // Current into drain leaves the drain node; the same
                    // current enters the source node.
                    if let Some(idr) = Self::vix(inst.drain) {
                        f[idr] += id;
                        if let Some(j) = Self::vix(inst.drain) {
                            jac.add(idr, j, g_d);
                        }
                        if let Some(j) = Self::vix(inst.gate) {
                            jac.add(idr, j, g_g);
                        }
                        if let Some(j) = Self::vix(inst.source) {
                            jac.add(idr, j, g_s);
                        }
                    }
                    if let Some(isr) = Self::vix(inst.source) {
                        f[isr] -= id;
                        if let Some(j) = Self::vix(inst.drain) {
                            jac.add(isr, j, -g_d);
                        }
                        if let Some(j) = Self::vix(inst.gate) {
                            jac.add(isr, j, -g_g);
                        }
                        if let Some(j) = Self::vix(inst.source) {
                            jac.add(isr, j, -g_s);
                        }
                    }
                }
            }
        }
        f
    }

    /// Runs Newton from `x0`, returning the converged unknown vector.
    pub(crate) fn newton(
        &mut self,
        mut x: Vec<f64>,
        caps: CapMode<'_>,
    ) -> Result<(Vec<f64>, usize), SpiceError> {
        for iter in 1..=MAX_NEWTON {
            let f = self.assemble(&x, caps);
            let mut rhs: Vec<f64> = f.iter().map(|v| -v).collect();
            let mut jac = self.jac.clone();
            let dx = solve_in_place(&mut jac, &mut rhs)
                .map_err(|e| SpiceError::SingularMatrix { column: e.column })?;

            // Damped update: clamp voltage steps.
            let n_v = self.n_nodes - 1;
            let mut max_dv: f64 = 0.0;
            for (i, d) in dx.iter().enumerate() {
                let step = if i < n_v {
                    d.clamp(-MAX_DV, MAX_DV)
                } else {
                    *d
                };
                x[i] += step;
                if i < n_v {
                    max_dv = max_dv.max(step.abs());
                }
            }

            if max_dv < VTOL {
                // Verify the KCL residual at the accepted point.
                let f = self.assemble(&x, caps);
                let res = f.iter().take(n_v).fold(0.0f64, |acc, v| acc.max(v.abs()));
                if res < ITOL.max(1e-9 * max_abs(&f)) {
                    return Ok((x, iter));
                }
            }
        }
        let f = self.assemble(&x, caps);
        Err(SpiceError::NoConvergence {
            iterations: MAX_NEWTON,
            residual: max_abs(&f),
        })
    }

    /// Splits a converged unknown vector into a [`DcSolution`].
    pub(crate) fn to_solution(&self, x: &[f64], iterations: usize) -> DcSolution {
        let n_v = self.n_nodes - 1;
        let mut node_voltages = Vec::with_capacity(self.n_nodes);
        node_voltages.push(0.0);
        node_voltages.extend_from_slice(&x[..n_v]);
        DcSolution {
            node_voltages,
            branch_currents: x[n_v..].to_vec(),
            iterations,
        }
    }
}

fn max_abs(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |acc, x| acc.max(x.abs()))
}

/// Recovery-ladder site name for DC operating-point solves.
const DC_SITE: &str = "spice.dc";
/// Gmin-stepping ladder: raised minimum conductances solved with
/// continuation, ending back at the nominal [`GMIN`].
const GMIN_LADDER: [f64; 5] = [1.0e-3, 1.0e-5, 1.0e-7, 1.0e-9, GMIN];

/// Solves the DC operating point (capacitors open, waveforms at `t = 0`).
///
/// Non-convergence escalates through a deterministic recovery ladder —
/// retry, source stepping (sources ramped 10 % → 100 %), then gmin
/// stepping (minimum conductance relaxed and walked back down to
/// [`GMIN`] with continuation). Each rung is recorded via
/// [`subvt_engine::recovery`] under the `spice.dc` site.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidNetlist`] for non-physical element
/// values, or the first solver error if every recovery rung fails.
pub fn dc_operating_point(net: &Netlist) -> Result<DcSolution, SpiceError> {
    use subvt_engine::{faultinject, recovery, recovery::RecoveryStep};

    net.validate()?;
    let mut solver = Solver::new(net);
    let x0 = vec![0.0; solver.dim()];

    // Fault injection fires before any solver state exists, so the plain
    // Retry rung reproduces the fault-free result bit-for-bit.
    let first = if faultinject::should_inject(faultinject::FaultSite::SolverDiverge) {
        Err(SpiceError::NoConvergence {
            iterations: 0,
            residual: f64::INFINITY,
        })
    } else {
        solver
            .newton(x0.clone(), CapMode::Open)
            .map(|(x, iters)| solver.to_solution(&x, iters))
    };
    let first_err = match first {
        Ok(sol) => return Ok(sol),
        Err(e) => e,
    };

    // Rung 1: plain retry from the same initial guess.
    match solver.newton(x0.clone(), CapMode::Open) {
        Ok((x, iters)) => {
            recovery::record(DC_SITE, RecoveryStep::Retry, format!("{first_err}"), true);
            return Ok(solver.to_solution(&x, iters));
        }
        Err(e) => {
            recovery::record(DC_SITE, RecoveryStep::Retry, format!("{e}"), false);
        }
    }

    // Rung 2: source stepping — ramp all sources from 10 % to 100 %.
    match source_stepping(&mut solver, &x0) {
        Ok(sol) => {
            recovery::record(
                DC_SITE,
                RecoveryStep::SourceStepping,
                format!("{first_err}"),
                true,
            );
            return Ok(sol);
        }
        Err(e) => {
            recovery::record(DC_SITE, RecoveryStep::SourceStepping, format!("{e}"), false);
        }
    }

    // Rung 3: gmin stepping — relax the minimum conductance and walk it
    // back down to nominal with continuation.
    match gmin_stepping(&mut solver, &x0) {
        Ok(sol) => {
            recovery::record(
                DC_SITE,
                RecoveryStep::GminStepping,
                format!("{first_err}"),
                true,
            );
            Ok(sol)
        }
        Err(e) => {
            recovery::record(DC_SITE, RecoveryStep::GminStepping, format!("{e}"), false);
            Err(first_err)
        }
    }
}

/// Source-stepping rung: sources ramped 10 % → 100 % with continuation.
fn source_stepping(solver: &mut Solver<'_>, x0: &[f64]) -> Result<DcSolution, SpiceError> {
    let mut x = x0.to_vec();
    let mut total_iters = 0;
    let result = (|| {
        for step in 1..=10 {
            solver.source_scale = step as f64 / 10.0;
            let (xs, it) = solver.newton(x.clone(), CapMode::Open)?;
            x = xs;
            total_iters += it;
        }
        Ok(solver.to_solution(&x, total_iters))
    })();
    solver.source_scale = 1.0;
    result
}

/// Gmin-stepping rung: solve with a large minimum conductance, then use
/// each solution as the starting point for the next, smaller one.
fn gmin_stepping(solver: &mut Solver<'_>, x0: &[f64]) -> Result<DcSolution, SpiceError> {
    let mut x = x0.to_vec();
    let mut total_iters = 0;
    let result = (|| {
        for gmin in GMIN_LADDER {
            solver.gmin = gmin;
            let (xs, it) = solver.newton(x.clone(), CapMode::Open)?;
            x = xs;
            total_iters += it;
        }
        Ok(solver.to_solution(&x, total_iters))
    })();
    solver.gmin = GMIN;
    result
}

/// Solves a DC operating point starting from a previous solution
/// (continuation) — used by sweeps and the transient initial condition.
pub fn dc_operating_point_from(
    net: &Netlist,
    initial: &DcSolution,
) -> Result<DcSolution, SpiceError> {
    let mut solver = Solver::new(net);
    let n_v = net.node_count() - 1;
    let mut x0 = vec![0.0; solver.dim()];
    x0[..n_v].copy_from_slice(&initial.node_voltages[1..]);
    for (i, &b) in initial.branch_currents.iter().enumerate() {
        if n_v + i < x0.len() {
            x0[n_v + i] = b;
        }
    }
    let (x, iters) = solver.newton(x0, CapMode::Open)?;
    Ok(solver.to_solution(&x, iters))
}

/// Sweeps the DC value of the named voltage source over `values`,
/// re-solving with continuation from the previous point.
///
/// # Errors
///
/// Returns [`SpiceError::UnknownSource`] if no voltage source has the
/// given name, or any solver error.
pub fn dc_sweep(
    net: &Netlist,
    source_name: &str,
    values: &[f64],
) -> Result<Vec<DcSolution>, SpiceError> {
    let mut work = net.clone();
    let idx = work
        .elements()
        .iter()
        .position(|e| e.name == source_name && matches!(e.element, Element::VSource { .. }))
        .ok_or_else(|| SpiceError::UnknownSource(source_name.to_owned()))?;

    let mut results = Vec::with_capacity(values.len());
    let mut prev: Option<DcSolution> = None;
    for &value in values {
        set_vsource_dc(&mut work, idx, value);
        let sol = match &prev {
            Some(p) => dc_operating_point_from(&work, p).or_else(|_| dc_operating_point(&work))?,
            None => dc_operating_point(&work)?,
        };
        prev = Some(sol.clone());
        results.push(sol);
    }
    Ok(results)
}

pub(crate) fn set_vsource_dc(net: &mut Netlist, element_index: usize, value: f64) {
    if let Element::VSource { waveform, .. } = &mut net.elements_mut()[element_index].element {
        *waveform = crate::netlist::Waveform::Dc(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn voltage_divider() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(3.0));
        net.resistor("R1", a, b, 1_000.0);
        net.resistor("R2", b, Netlist::GROUND, 2_000.0);
        let sol = dc_operating_point(&net).unwrap();
        assert!((sol.node_voltages[a] - 3.0).abs() < 1e-9);
        assert!((sol.node_voltages[b] - 2.0).abs() < 1e-6);
        // Branch current: 3 V across 3 kΩ = 1 mA flowing through the
        // source from + to − is negative (delivering power).
        assert!((sol.branch_currents[0] + 1.0e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut net = Netlist::new();
        let a = net.node("a");
        // 1 mA flowing ground → a through the source injects into `a`.
        net.isource("I1", Netlist::GROUND, a, Waveform::Dc(1.0e-3));
        net.resistor("R1", a, Netlist::GROUND, 1_000.0);
        let sol = dc_operating_point(&net).unwrap();
        assert!((sol.node_voltages[a] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_is_singular_or_grounded_by_gmin() {
        // A node connected only through a capacitor is held by g_min.
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0));
        net.capacitor("C1", a, b, 1.0e-15);
        let sol = dc_operating_point(&net).unwrap();
        assert!(sol.node_voltages[b].abs() < 1e-6);
    }

    #[test]
    fn two_sources_kirchhoff_loop() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(5.0));
        net.vsource("V2", b, Netlist::GROUND, Waveform::Dc(2.0));
        net.resistor("R", a, b, 1_000.0);
        let sol = dc_operating_point(&net).unwrap();
        // 3 V across 1 kΩ → 3 mA from a to b.
        assert!((sol.branch_currents[0] + 3.0e-3).abs() < 1e-8);
        assert!((sol.branch_currents[1] - 3.0e-3).abs() < 1e-8);
    }

    #[test]
    fn dc_sweep_tracks_source() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("Vin", a, Netlist::GROUND, Waveform::Dc(0.0));
        net.resistor("R1", a, b, 1_000.0);
        net.resistor("R2", b, Netlist::GROUND, 1_000.0);
        let sols = dc_sweep(&net, "Vin", &[0.0, 1.0, 2.0]).unwrap();
        let got: Vec<f64> = sols.iter().map(|s| s.node_voltages[b]).collect();
        assert!((got[0] - 0.0).abs() < 1e-9);
        assert!((got[1] - 0.5).abs() < 1e-6);
        assert!((got[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn injected_divergence_recovers_bit_identically() {
        use subvt_engine::faultinject::{self, FaultPlan};

        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.2));
        net.resistor("R1", a, b, 10_000.0);
        net.resistor("R2", b, Netlist::GROUND, 5_000.0);

        faultinject::configure(None);
        let clean = dc_operating_point(&net).unwrap();

        let mut plan = FaultPlan::quiet(77);
        plan.p_diverge = 1.0;
        faultinject::configure(Some(plan));
        let recovered = dc_operating_point(&net);
        faultinject::configure(None);

        let recovered = recovered.unwrap();
        // The Retry rung re-runs the identical Newton solve, so recovered
        // results are bit-for-bit equal to the fault-free run.
        for (c, r) in clean.node_voltages.iter().zip(&recovered.node_voltages) {
            assert_eq!(c.to_bits(), r.to_bits());
        }
        for (c, r) in clean.branch_currents.iter().zip(&recovered.branch_currents) {
            assert_eq!(c.to_bits(), r.to_bits());
        }
        let recs = subvt_engine::recovery::snapshot();
        assert!(recs.iter().any(|r| r.site == "spice.dc" && r.recovered));
    }

    #[test]
    fn invalid_netlist_is_rejected_before_solving() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(f64::NAN));
        net.resistor("R1", a, Netlist::GROUND, 1_000.0);
        assert!(matches!(
            dc_operating_point(&net),
            Err(SpiceError::InvalidNetlist { .. })
        ));
    }

    #[test]
    fn sweep_unknown_source_errors() {
        let net = Netlist::new();
        assert!(matches!(
            dc_sweep(&net, "nope", &[0.0]),
            Err(SpiceError::UnknownSource(_))
        ));
    }

    #[test]
    fn nfet_inverter_dc_rails() {
        use subvt_physics::{DeviceKind, DeviceParams};
        let nfet = DeviceParams::reference_90nm_nfet();
        let pfet = DeviceParams {
            kind: DeviceKind::Pfet,
            ..nfet
        };
        let nmod = nfet.mos_model();
        let pmod = pfet.mos_model();

        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let vin = net.node("in");
        let vout = net.node("out");
        net.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.2));
        net.vsource("VIN", vin, Netlist::GROUND, Waveform::Dc(0.0));
        net.mosfet("MP", pmod, 2.0, vout, vin, vdd);
        net.mosfet("MN", nmod, 1.0, vout, vin, Netlist::GROUND);

        // Input low → output high.
        let sol = dc_operating_point(&net).unwrap();
        assert!(
            (sol.node_voltages[vout] - 1.2).abs() < 0.01,
            "out = {}",
            sol.node_voltages[vout]
        );

        // Input high → output low.
        let mut net_hi = net.clone();
        set_vsource_dc(&mut net_hi, 1, 1.2);
        let sol = dc_operating_point(&net_hi).unwrap();
        assert!(
            sol.node_voltages[vout].abs() < 0.01,
            "out = {}",
            sol.node_voltages[vout]
        );
    }
}
