//! Modified nodal analysis: residual assembly, Newton–Raphson DC solve
//! with source stepping, and DC sweeps.
//!
//! Unknown vector layout: `x = [v_1 … v_{N−1}, i_1 … i_M]` — node voltages
//! (ground excluded) followed by one branch current per voltage source.
//! Branch current sign convention: positive current flows from the `pos`
//! terminal *through the source* to `neg` (passive convention), so a
//! supply delivering power has a negative branch current.

use subvt_engine::trace;
use subvt_physics::MosModel;
use subvt_units::Volts;

use crate::linalg::{DenseMatrix, LuFactors};
use crate::netlist::{Element, MosInstance, Netlist};

/// Minimum conductance from every node to ground, for convergence aid.
const GMIN: f64 = 1.0e-12;
/// Maximum Newton voltage update per iteration (damping).
const MAX_DV: f64 = 0.3;
/// Newton voltage-update convergence tolerance.
const VTOL: f64 = 1.0e-10;
/// Newton residual (KCL) convergence tolerance, amps.
const ITOL: f64 = 1.0e-13;
/// Maximum Newton iterations per solve.
const MAX_NEWTON: usize = 200;
/// Pre-clamp step magnitude beyond which Newton is declared divergent
/// immediately — no damped walk can recover a 10¹² V excursion, so bail
/// to the recovery ladder instead of burning [`MAX_NEWTON`] iterations.
const DIVERGENCE_LIMIT: f64 = 1.0e12;

/// Errors from circuit analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The MNA Jacobian was singular — usually a floating node or a
    /// voltage-source loop.
    SingularMatrix {
        /// Elimination column where the failure occurred.
        column: usize,
        /// The unknown that column solves for: the netlist node name, or
        /// the voltage-source element name for branch-current columns.
        unknown: String,
    },
    /// Newton failed to converge even with source stepping.
    NoConvergence {
        /// Iterations consumed.
        iterations: usize,
        /// Final residual infinity-norm (amps).
        residual: f64,
    },
    /// A named source was not found in the netlist.
    UnknownSource(String),
    /// A netlist element carries a non-physical value (non-finite or
    /// out-of-range), detected by [`Netlist::validate`] before solving.
    InvalidNetlist {
        /// Name of the offending element.
        element: String,
        /// What was wrong with it.
        message: String,
    },
    /// A transient specification that cannot produce any time points.
    InvalidTransientSpec {
        /// Requested time step, seconds.
        dt: f64,
        /// Requested stop time, seconds.
        t_stop: f64,
    },
}

impl core::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpiceError::SingularMatrix { column, unknown } => {
                write!(
                    f,
                    "singular MNA matrix at column {column} \
                     (`{unknown}`: floating node or voltage-source loop?)"
                )
            }
            SpiceError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "newton failed after {iterations} iterations (residual {residual:e} A)"
                )
            }
            SpiceError::UnknownSource(name) => write!(f, "unknown source `{name}`"),
            SpiceError::InvalidNetlist { element, message } => {
                write!(f, "invalid netlist element `{element}`: {message}")
            }
            SpiceError::InvalidTransientSpec { dt, t_stop } => {
                write!(
                    f,
                    "invalid transient spec: dt = {dt:e} s, t_stop = {t_stop:e} s"
                )
            }
        }
    }
}

impl std::error::Error for SpiceError {}

/// How capacitors are treated during assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CapMode<'a> {
    /// DC: capacitors are open circuits.
    Open,
    /// Companion model: conductance `factor·C` with a history current.
    /// `v_prev` holds the previous-step node voltages and `i_prev` the
    /// previous-step capacitor currents (trapezoidal only; zeros for BE).
    Companion {
        /// Conductance multiplier (`1/h` for BE, `2/h` for trapezoidal).
        factor: f64,
        /// Node voltages at the previous accepted time point.
        v_prev: &'a [f64],
        /// Capacitor branch currents at the previous time point.
        i_prev: &'a [f64],
    },
}

/// A converged operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    /// Node voltages, indexed by [`crate::netlist::NodeId`] (entry 0 is
    /// ground and always 0).
    pub node_voltages: Vec<f64>,
    /// Branch currents of voltage sources, in netlist order.
    pub branch_currents: Vec<f64>,
    /// Newton iterations consumed.
    pub iterations: usize,
}

impl DcSolution {
    /// Voltage at a node.
    pub fn voltage(&self, node: usize) -> Volts {
        Volts::new(self.node_voltages[node])
    }
}

/// Internal solver state shared by DC and transient analyses.
pub(crate) struct Solver<'a> {
    net: &'a Netlist,
    n_nodes: usize,
    vsrc_rows: Vec<usize>,
    /// Scale factor applied to all independent sources (source stepping).
    pub(crate) source_scale: f64,
    /// Evaluation time for waveforms.
    pub(crate) time: f64,
    /// Minimum conductance to ground on every node. Defaults to [`GMIN`];
    /// raised temporarily during gmin stepping.
    pub(crate) gmin: f64,
    jac: DenseMatrix,
    /// Persistent LU workspace: factors are reused across Newton
    /// iterations (and, when threaded in from a sweep, across bias
    /// points) via cached-pivot refactorization.
    pub(crate) lu: LuFactors,
    /// Largest |current| stamped into any KCL row during the last
    /// [`Solver::assemble`] — the unit-correct scale for the relative
    /// residual floor (branch rows are volt-valued and must not leak in).
    kcl_scale: f64,
}

impl<'a> Solver<'a> {
    pub(crate) fn new(net: &'a Netlist) -> Self {
        let n_nodes = net.node_count();
        let vsrc_rows = net.vsource_indices();
        let dim = n_nodes - 1 + vsrc_rows.len();
        Self {
            net,
            n_nodes,
            vsrc_rows,
            source_scale: 1.0,
            time: 0.0,
            gmin: GMIN,
            jac: DenseMatrix::zeros(dim),
            lu: LuFactors::new(),
            kcl_scale: 0.0,
        }
    }

    pub(crate) fn dim(&self) -> usize {
        self.n_nodes - 1 + self.vsrc_rows.len()
    }

    /// Number of capacitors (for transient history state).
    pub(crate) fn cap_count(&self) -> usize {
        self.net
            .elements()
            .iter()
            .filter(|e| matches!(e.element, Element::Capacitor { .. }))
            .count()
    }

    #[inline]
    fn vix(node: usize) -> Option<usize> {
        (node > 0).then(|| node - 1)
    }

    /// Node voltage from the unknown vector (ground = 0).
    #[inline]
    fn v(x: &[f64], node: usize) -> f64 {
        if node == 0 {
            0.0
        } else {
            x[node - 1]
        }
    }

    /// MOSFET drain current (into the drain terminal) and its partial
    /// derivatives `(i_d, ∂i_d/∂v_d, ∂i_d/∂v_g)` in the node frame, amps
    /// and siemens. `∂i_d/∂v_s = −(∂i_d/∂v_d + ∂i_d/∂v_g)` by charge
    /// conservation, so it is not returned separately.
    ///
    /// The current value goes through
    /// [`MosModel::drain_current_and_derivs`], whose value path is
    /// bit-identical to [`MosModel::drain_current`]. For both polarities
    /// the node-frame chain rule collapses to the same mapping:
    /// `∂i_d/∂v_d = W·∂I/∂v_ds` and `∂i_d/∂v_g = W·∂I/∂v_gs` (the PFET's
    /// leading `−1` cancels against its reversed magnitude frame).
    fn mos_current_and_derivs(inst: &MosInstance, vd: f64, vg: f64, vs: f64) -> (f64, f64, f64) {
        let model: &MosModel = &inst.model;
        let (vgs, vds, sign) = match model.kind {
            subvt_physics::DeviceKind::Nfet => (vg - vs, vd - vs, 1.0),
            subvt_physics::DeviceKind::Pfet => (vs - vg, vs - vd, -1.0),
        };
        let (i, di_dvgs, di_dvds) =
            model.drain_current_and_derivs(Volts::new(vgs), Volts::new(vds));
        let w = inst.width_um;
        (sign * w * i.get(), w * di_dvds, w * di_dvgs)
    }

    /// Assembles the Newton residual `f` and Jacobian at state `x`.
    /// Returns the residual; the Jacobian is left in `self.jac` and the
    /// largest KCL current contribution in `self.kcl_scale`.
    pub(crate) fn assemble(&mut self, x: &[f64], caps: CapMode<'_>) -> Vec<f64> {
        let dim = self.dim();
        let mut f = vec![0.0; dim];
        self.jac.clear();
        let jac = &mut self.jac;
        // Unit-correct scale for the relative residual floor: the largest
        // |current| any element pushes into a KCL row. Branch (KVL) rows
        // are volt-valued and deliberately excluded.
        let mut scale = 0.0f64;

        // g_min to ground on every node.
        let gmin = self.gmin;
        for n in 1..self.n_nodes {
            let i = n - 1;
            f[i] += gmin * x[i];
            jac.add(i, i, gmin);
            scale = scale.max((gmin * x[i]).abs());
        }

        let mut branch = 0usize;
        let mut cap_idx = 0usize;
        for named in self.net.elements() {
            match &named.element {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    let i = g * (Self::v(x, *a) - Self::v(x, *b));
                    scale = scale.max(i.abs());
                    if let Some(ia) = Self::vix(*a) {
                        f[ia] += i;
                        jac.add(ia, ia, g);
                        if let Some(ib) = Self::vix(*b) {
                            jac.add(ia, ib, -g);
                        }
                    }
                    if let Some(ib) = Self::vix(*b) {
                        f[ib] -= i;
                        jac.add(ib, ib, g);
                        if let Some(ia) = Self::vix(*a) {
                            jac.add(ib, ia, -g);
                        }
                    }
                }
                Element::Capacitor { a, b, farads } => {
                    if let CapMode::Companion {
                        factor,
                        v_prev,
                        i_prev,
                    } = caps
                    {
                        let g = factor * farads;
                        let v_now = Self::v(x, *a) - Self::v(x, *b);
                        let vp = {
                            let va = if *a == 0 { 0.0 } else { v_prev[*a - 1] };
                            let vb = if *b == 0 { 0.0 } else { v_prev[*b - 1] };
                            va - vb
                        };
                        // BE: i = (C/h)(v − v_prev); trapezoidal adds the
                        // previous current: i = (2C/h)(v − v_prev) − i_prev.
                        let i = g * (v_now - vp) - i_prev[cap_idx];
                        scale = scale.max(i.abs());
                        if let Some(ia) = Self::vix(*a) {
                            f[ia] += i;
                            jac.add(ia, ia, g);
                            if let Some(ib) = Self::vix(*b) {
                                jac.add(ia, ib, -g);
                            }
                        }
                        if let Some(ib) = Self::vix(*b) {
                            f[ib] -= i;
                            jac.add(ib, ib, g);
                            if let Some(ia) = Self::vix(*a) {
                                jac.add(ib, ia, -g);
                            }
                        }
                    }
                    cap_idx += 1;
                }
                Element::VSource { pos, neg, waveform } => {
                    let row = self.n_nodes - 1 + branch;
                    let value = self.source_scale * waveform.value_at(self.time);
                    let i_br = x[row];
                    scale = scale.max(i_br.abs());
                    if let Some(ip) = Self::vix(*pos) {
                        f[ip] += i_br;
                        jac.add(ip, row, 1.0);
                    }
                    if let Some(in_) = Self::vix(*neg) {
                        f[in_] -= i_br;
                        jac.add(in_, row, -1.0);
                    }
                    f[row] = Self::v(x, *pos) - Self::v(x, *neg) - value;
                    if let Some(ip) = Self::vix(*pos) {
                        jac.add(row, ip, 1.0);
                    }
                    if let Some(in_) = Self::vix(*neg) {
                        jac.add(row, in_, -1.0);
                    }
                    branch += 1;
                }
                Element::ISource { pos, neg, waveform } => {
                    let value = self.source_scale * waveform.value_at(self.time);
                    scale = scale.max(value.abs());
                    // Current flows pos → neg through the source.
                    if let Some(ip) = Self::vix(*pos) {
                        f[ip] += value;
                    }
                    if let Some(in_) = Self::vix(*neg) {
                        f[in_] -= value;
                    }
                }
                Element::Mosfet(inst) => {
                    let (vd, vg, vs) = (
                        Self::v(x, inst.drain),
                        Self::v(x, inst.gate),
                        Self::v(x, inst.source),
                    );
                    // Analytic derivatives: one model evaluation per
                    // device instead of the four a forward difference
                    // needed, and exact conductances for Newton.
                    let (id, g_d, g_g) = Self::mos_current_and_derivs(inst, vd, vg, vs);
                    let g_s = -(g_d + g_g);
                    scale = scale.max(id.abs());
                    // Current into drain leaves the drain node; the same
                    // current enters the source node.
                    if let Some(idr) = Self::vix(inst.drain) {
                        f[idr] += id;
                        if let Some(j) = Self::vix(inst.drain) {
                            jac.add(idr, j, g_d);
                        }
                        if let Some(j) = Self::vix(inst.gate) {
                            jac.add(idr, j, g_g);
                        }
                        if let Some(j) = Self::vix(inst.source) {
                            jac.add(idr, j, g_s);
                        }
                    }
                    if let Some(isr) = Self::vix(inst.source) {
                        f[isr] -= id;
                        if let Some(j) = Self::vix(inst.drain) {
                            jac.add(isr, j, -g_d);
                        }
                        if let Some(j) = Self::vix(inst.gate) {
                            jac.add(isr, j, -g_g);
                        }
                        if let Some(j) = Self::vix(inst.source) {
                            jac.add(isr, j, -g_s);
                        }
                    }
                }
            }
        }
        self.kcl_scale = scale;
        f
    }

    /// The KCL residual acceptance floor: [`ITOL`] or a 1 ppb fraction of
    /// the largest current flowing anywhere in the circuit, whichever is
    /// larger. Computed from KCL current contributions only — the old
    /// formula scaled off the full residual vector, letting volt-valued
    /// branch (KVL) rows inflate an amp-valued tolerance.
    pub(crate) fn residual_floor(&self) -> f64 {
        ITOL.max(1e-9 * self.kcl_scale)
    }

    /// Maps a singular elimination column to [`SpiceError::SingularMatrix`]
    /// naming the unknown (node name, or voltage-source element name for
    /// branch columns).
    fn singular_error(&self, column: usize) -> SpiceError {
        let n_v = self.n_nodes - 1;
        let unknown = if column < n_v {
            let node = column + 1;
            self.net
                .node_name(node)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("node #{node}"))
        } else {
            let branch = column - n_v;
            self.vsrc_rows
                .get(branch)
                .map(|&i| format!("branch of {}", self.net.elements()[i].name))
                .unwrap_or_else(|| format!("branch #{branch}"))
        };
        SpiceError::SingularMatrix { column, unknown }
    }

    /// Runs Newton from `x0`, returning the converged unknown vector.
    ///
    /// The Jacobian is assembled in place into the persistent workspace
    /// (no per-iteration clone), and the LU factors are reused through
    /// cached-pivot refactorization whenever the pivot order stays
    /// stable — only the first iteration (or a pivot-order change) pays
    /// for a full pivot search.
    pub(crate) fn newton(
        &mut self,
        mut x: Vec<f64>,
        caps: CapMode<'_>,
    ) -> Result<(Vec<f64>, usize), SpiceError> {
        let n_v = self.n_nodes - 1;
        for iter in 1..=MAX_NEWTON {
            let f = self.assemble(&x, caps);
            let mut rhs: Vec<f64> = f.iter().map(|v| -v).collect();
            if self.lu.refactor_cached(&self.jac).is_ok() {
                trace::add("spice.lu.resolve", 1);
            } else {
                self.lu
                    .factor(&self.jac)
                    .map_err(|e| self.singular_error(e.column))?;
                trace::add("spice.lu.factor", 1);
            }
            let dx = self.lu.solve(&mut rhs);

            // Damped update: clamp voltage steps, tracking the *pre-clamp*
            // norms — a step pinned at the clamp used to masquerade as
            // progress, and branch-current blow-ups were invisible.
            let mut max_dv_raw: f64 = 0.0;
            let mut max_di: f64 = 0.0;
            for (i, d) in dx.iter().enumerate() {
                let step = if i < n_v {
                    d.clamp(-MAX_DV, MAX_DV)
                } else {
                    *d
                };
                x[i] += step;
                if i < n_v {
                    max_dv_raw = max_dv_raw.max(d.abs());
                } else {
                    max_di = max_di.max(d.abs());
                }
            }

            // Divergence guard over the full (voltage + branch) step: a
            // non-finite or astronomically large raw step cannot be walked
            // back by damping — hand control to the recovery ladder now.
            if !(max_dv_raw.is_finite() && max_di.is_finite())
                || max_dv_raw > DIVERGENCE_LIMIT
                || max_di > DIVERGENCE_LIMIT
            {
                return Err(SpiceError::NoConvergence {
                    iterations: iter,
                    residual: max_abs(&f),
                });
            }

            // Branch currents converge when their step is small relative
            // to the currents actually flowing (amps scale, same floor
            // construction as the KCL residual check).
            let branch_scale = x[n_v..].iter().fold(0.0f64, |acc, b| acc.max(b.abs()));
            if max_dv_raw < VTOL && max_di <= ITOL.max(1e-9 * branch_scale) {
                // Verify the KCL residual at the accepted point.
                let f = self.assemble(&x, caps);
                let res = f.iter().take(n_v).fold(0.0f64, |acc, v| acc.max(v.abs()));
                if res < self.residual_floor() {
                    return Ok((x, iter));
                }
            }
        }
        let f = self.assemble(&x, caps);
        Err(SpiceError::NoConvergence {
            iterations: MAX_NEWTON,
            residual: max_abs(&f),
        })
    }

    /// Splits a converged unknown vector into a [`DcSolution`].
    pub(crate) fn to_solution(&self, x: &[f64], iterations: usize) -> DcSolution {
        let n_v = self.n_nodes - 1;
        let mut node_voltages = Vec::with_capacity(self.n_nodes);
        node_voltages.push(0.0);
        node_voltages.extend_from_slice(&x[..n_v]);
        DcSolution {
            node_voltages,
            branch_currents: x[n_v..].to_vec(),
            iterations,
        }
    }
}

fn max_abs(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |acc, x| acc.max(x.abs()))
}

/// Recovery-ladder site name for DC operating-point solves.
const DC_SITE: &str = "spice.dc";
/// Gmin-stepping ladder: raised minimum conductances solved with
/// continuation, ending back at the nominal [`GMIN`].
const GMIN_LADDER: [f64; 5] = [1.0e-3, 1.0e-5, 1.0e-7, 1.0e-9, GMIN];

/// Solves the DC operating point (capacitors open, waveforms at `t = 0`).
///
/// Non-convergence escalates through a deterministic recovery ladder —
/// retry, source stepping (sources ramped 10 % → 100 %), then gmin
/// stepping (minimum conductance relaxed and walked back down to
/// [`GMIN`] with continuation). Each rung is recorded via
/// [`subvt_engine::recovery`] under the `spice.dc` site.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidNetlist`] for non-physical element
/// values, or the first solver error if every recovery rung fails.
pub fn dc_operating_point(net: &Netlist) -> Result<DcSolution, SpiceError> {
    use subvt_engine::{faultinject, recovery, recovery::RecoveryStep};

    net.validate()?;
    let mut solver = Solver::new(net);
    let x0 = vec![0.0; solver.dim()];

    // Fault injection fires before any solver state exists, so the plain
    // Retry rung reproduces the fault-free result bit-for-bit.
    let first = if faultinject::should_inject(faultinject::FaultSite::SolverDiverge) {
        Err(SpiceError::NoConvergence {
            iterations: 0,
            residual: f64::INFINITY,
        })
    } else {
        solver
            .newton(x0.clone(), CapMode::Open)
            .map(|(x, iters)| solver.to_solution(&x, iters))
    };
    let first_err = match first {
        Ok(sol) => return Ok(sol),
        Err(e) => e,
    };

    // Rung 1: plain retry from the same initial guess.
    match solver.newton(x0.clone(), CapMode::Open) {
        Ok((x, iters)) => {
            recovery::record(DC_SITE, RecoveryStep::Retry, format!("{first_err}"), true);
            return Ok(solver.to_solution(&x, iters));
        }
        Err(e) => {
            recovery::record(DC_SITE, RecoveryStep::Retry, format!("{e}"), false);
        }
    }

    // Rung 2: source stepping — ramp all sources from 10 % to 100 %.
    match source_stepping(&mut solver, &x0) {
        Ok(sol) => {
            recovery::record(
                DC_SITE,
                RecoveryStep::SourceStepping,
                format!("{first_err}"),
                true,
            );
            return Ok(sol);
        }
        Err(e) => {
            recovery::record(DC_SITE, RecoveryStep::SourceStepping, format!("{e}"), false);
        }
    }

    // Rung 3: gmin stepping — relax the minimum conductance and walk it
    // back down to nominal with continuation.
    match gmin_stepping(&mut solver, &x0) {
        Ok(sol) => {
            recovery::record(
                DC_SITE,
                RecoveryStep::GminStepping,
                format!("{first_err}"),
                true,
            );
            Ok(sol)
        }
        Err(e) => {
            recovery::record(DC_SITE, RecoveryStep::GminStepping, format!("{e}"), false);
            Err(first_err)
        }
    }
}

/// Source-stepping rung: sources ramped 10 % → 100 % with continuation.
fn source_stepping(solver: &mut Solver<'_>, x0: &[f64]) -> Result<DcSolution, SpiceError> {
    let mut x = x0.to_vec();
    let mut total_iters = 0;
    let result = (|| {
        for step in 1..=10 {
            solver.source_scale = step as f64 / 10.0;
            let (xs, it) = solver.newton(x.clone(), CapMode::Open)?;
            x = xs;
            total_iters += it;
        }
        Ok(solver.to_solution(&x, total_iters))
    })();
    solver.source_scale = 1.0;
    result
}

/// Gmin-stepping rung: solve with a large minimum conductance, then use
/// each solution as the starting point for the next, smaller one.
fn gmin_stepping(solver: &mut Solver<'_>, x0: &[f64]) -> Result<DcSolution, SpiceError> {
    let mut x = x0.to_vec();
    let mut total_iters = 0;
    let result = (|| {
        for gmin in GMIN_LADDER {
            solver.gmin = gmin;
            let (xs, it) = solver.newton(x.clone(), CapMode::Open)?;
            x = xs;
            total_iters += it;
        }
        Ok(solver.to_solution(&x, total_iters))
    })();
    solver.gmin = GMIN;
    result
}

/// Whether `SUBVT_SPICE_COLD_START` forces every solve to start from
/// zeros plus the recovery ladder, disabling warm starts and sweep
/// continuation. Used by CI to verify warm-started results are identical
/// to cold-started ones; read once per process.
pub fn cold_start_forced() -> bool {
    use std::sync::OnceLock;
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("SUBVT_SPICE_COLD_START")
            .map(|v| v != "0" && !v.is_empty())
            .unwrap_or(false)
    })
}

/// Solves a DC operating point starting from a previous solution
/// (continuation) — used by sweeps, Monte-Carlo samples, and the
/// transient initial condition.
///
/// Counts as a warm start (`spice.newton.warm_start`); when
/// [`cold_start_forced`] is set the initial guess is ignored and the
/// solve routes through the cold [`dc_operating_point`] path instead.
pub fn dc_operating_point_from(
    net: &Netlist,
    initial: &DcSolution,
) -> Result<DcSolution, SpiceError> {
    if cold_start_forced() {
        return dc_operating_point(net);
    }
    let mut lu = LuFactors::new();
    dc_operating_point_from_with(net, initial, &mut lu)
}

/// [`dc_operating_point_from`] with a caller-owned LU workspace, so
/// consecutive solves over structurally identical matrices (sweep points,
/// Monte-Carlo samples) can reuse the cached pivot order across calls.
/// The workspace is returned to the caller even when the solve fails.
pub(crate) fn dc_operating_point_from_with(
    net: &Netlist,
    initial: &DcSolution,
    lu: &mut LuFactors,
) -> Result<DcSolution, SpiceError> {
    let mut solver = Solver::new(net);
    solver.lu = core::mem::take(lu);
    let n_v = net.node_count() - 1;
    let mut x0 = vec![0.0; solver.dim()];
    x0[..n_v].copy_from_slice(&initial.node_voltages[1..]);
    for (i, &b) in initial.branch_currents.iter().enumerate() {
        if n_v + i < x0.len() {
            x0[n_v + i] = b;
        }
    }
    trace::add("spice.newton.warm_start", 1);
    let result = solver.newton(x0, CapMode::Open);
    *lu = core::mem::take(&mut solver.lu);
    let (x, iters) = result?;
    Ok(solver.to_solution(&x, iters))
}

/// Sweeps the DC value of the named voltage source over `values`,
/// re-solving with continuation from the previous point (and reusing the
/// LU pivot order across points — the matrices share structure).
///
/// # Errors
///
/// Returns [`SpiceError::UnknownSource`] if no voltage source has the
/// given name, or any solver error.
pub fn dc_sweep(
    net: &Netlist,
    source_name: &str,
    values: &[f64],
) -> Result<Vec<DcSolution>, SpiceError> {
    let mut work = net.clone();
    let idx = work
        .elements()
        .iter()
        .position(|e| e.name == source_name && matches!(e.element, Element::VSource { .. }))
        .ok_or_else(|| SpiceError::UnknownSource(source_name.to_owned()))?;

    let mut results = Vec::with_capacity(values.len());
    let mut prev: Option<DcSolution> = None;
    let mut lu = LuFactors::new();
    for &value in values {
        set_vsource_dc(&mut work, idx, value);
        let sol = match &prev {
            Some(p) if !cold_start_forced() => dc_operating_point_from_with(&work, p, &mut lu)
                .or_else(|_| dc_operating_point(&work))?,
            _ => dc_operating_point(&work)?,
        };
        prev = Some(sol.clone());
        results.push(sol);
    }
    Ok(results)
}

pub(crate) fn set_vsource_dc(net: &mut Netlist, element_index: usize, value: f64) {
    if let Element::VSource { waveform, .. } = &mut net.elements_mut()[element_index].element {
        *waveform = crate::netlist::Waveform::Dc(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn voltage_divider() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(3.0));
        net.resistor("R1", a, b, 1_000.0);
        net.resistor("R2", b, Netlist::GROUND, 2_000.0);
        let sol = dc_operating_point(&net).unwrap();
        assert!((sol.node_voltages[a] - 3.0).abs() < 1e-9);
        assert!((sol.node_voltages[b] - 2.0).abs() < 1e-6);
        // Branch current: 3 V across 3 kΩ = 1 mA flowing through the
        // source from + to − is negative (delivering power).
        assert!((sol.branch_currents[0] + 1.0e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut net = Netlist::new();
        let a = net.node("a");
        // 1 mA flowing ground → a through the source injects into `a`.
        net.isource("I1", Netlist::GROUND, a, Waveform::Dc(1.0e-3));
        net.resistor("R1", a, Netlist::GROUND, 1_000.0);
        let sol = dc_operating_point(&net).unwrap();
        assert!((sol.node_voltages[a] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_is_singular_or_grounded_by_gmin() {
        // A node connected only through a capacitor is held by g_min.
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0));
        net.capacitor("C1", a, b, 1.0e-15);
        let sol = dc_operating_point(&net).unwrap();
        assert!(sol.node_voltages[b].abs() < 1e-6);
    }

    #[test]
    fn two_sources_kirchhoff_loop() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(5.0));
        net.vsource("V2", b, Netlist::GROUND, Waveform::Dc(2.0));
        net.resistor("R", a, b, 1_000.0);
        let sol = dc_operating_point(&net).unwrap();
        // 3 V across 1 kΩ → 3 mA from a to b.
        assert!((sol.branch_currents[0] + 3.0e-3).abs() < 1e-8);
        assert!((sol.branch_currents[1] - 3.0e-3).abs() < 1e-8);
    }

    #[test]
    fn dc_sweep_tracks_source() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("Vin", a, Netlist::GROUND, Waveform::Dc(0.0));
        net.resistor("R1", a, b, 1_000.0);
        net.resistor("R2", b, Netlist::GROUND, 1_000.0);
        let sols = dc_sweep(&net, "Vin", &[0.0, 1.0, 2.0]).unwrap();
        let got: Vec<f64> = sols.iter().map(|s| s.node_voltages[b]).collect();
        assert!((got[0] - 0.0).abs() < 1e-9);
        assert!((got[1] - 0.5).abs() < 1e-6);
        assert!((got[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn injected_divergence_recovers_bit_identically() {
        use subvt_engine::faultinject::{self, FaultPlan};

        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.2));
        net.resistor("R1", a, b, 10_000.0);
        net.resistor("R2", b, Netlist::GROUND, 5_000.0);

        faultinject::configure(None);
        let clean = dc_operating_point(&net).unwrap();

        let mut plan = FaultPlan::quiet(77);
        plan.p_diverge = 1.0;
        faultinject::configure(Some(plan));
        let recovered = dc_operating_point(&net);
        faultinject::configure(None);

        let recovered = recovered.unwrap();
        // The Retry rung re-runs the identical Newton solve, so recovered
        // results are bit-for-bit equal to the fault-free run.
        for (c, r) in clean.node_voltages.iter().zip(&recovered.node_voltages) {
            assert_eq!(c.to_bits(), r.to_bits());
        }
        for (c, r) in clean.branch_currents.iter().zip(&recovered.branch_currents) {
            assert_eq!(c.to_bits(), r.to_bits());
        }
        let recs = subvt_engine::recovery::snapshot();
        assert!(recs.iter().any(|r| r.site == "spice.dc" && r.recovered));
    }

    #[test]
    fn residual_floor_ignores_branch_voltage_rows() {
        // Regression for the unit-mixing bug: the relative floor used to
        // scale off max|f| over the FULL residual vector, so a megavolt
        // branch (KVL) row turned the amp-valued tolerance into 1e-3 A —
        // wide enough to accept a microamp circuit at garbage points.
        let mut net = Netlist::new();
        let a = net.node("hv");
        net.vsource("VHV", a, Netlist::GROUND, Waveform::Dc(1.0e6));
        net.resistor("RHV", a, Netlist::GROUND, 1.0e12); // ~1 µA flows
        let mut solver = Solver::new(&net);
        let x0 = vec![0.0; solver.dim()];
        let f = solver.assemble(&x0, CapMode::Open);
        // At x = 0 the branch row carries the full −1e6 V source value…
        assert!(max_abs(&f) >= 1.0e6);
        let old_floor = ITOL.max(1e-9 * max_abs(&f));
        assert!(old_floor >= 1.0e-3, "old formula floor = {old_floor:e}");
        // …but the KCL-scaled floor stays at the amp-valued tolerance.
        assert!(
            solver.residual_floor() <= 1.0e-12,
            "floor = {:e}",
            solver.residual_floor()
        );

        // End-to-end on a solvable deck: the accepted point must satisfy
        // KCL at the strict amp-scaled floor, far below what the inflated
        // formula would have demanded for the same source voltage.
        let mut lo = Netlist::new();
        let n = lo.node("mid");
        lo.vsource("V1", n, Netlist::GROUND, Waveform::Dc(3.0));
        lo.resistor("R1", n, Netlist::GROUND, 1.0e6); // 3 µA flows
        let sol = dc_operating_point(&lo).unwrap();
        let v = sol.node_voltages[n];
        let kcl = (v / 1.0e6 + GMIN * v + sol.branch_currents[0]).abs();
        assert!(kcl < 1.0e-12, "KCL imbalance {kcl:e}");
        assert!((v - 3.0).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_names_the_offending_node() {
        // Two voltage sources in a loop across the same node pair make
        // the branch equations linearly dependent.
        let mut net = Netlist::new();
        let a = net.node("looped");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0));
        net.vsource("V2", a, Netlist::GROUND, Waveform::Dc(2.0));
        let mut solver = Solver::new(&net);
        let err = solver.newton(vec![0.0; solver.dim()], CapMode::Open);
        match err {
            Err(SpiceError::SingularMatrix { unknown, .. }) => {
                assert!(
                    unknown.contains("looped") || unknown.contains("V2") || unknown.contains("V1"),
                    "unknown = {unknown}"
                );
                let msg = format!(
                    "{}",
                    SpiceError::SingularMatrix {
                        column: 1,
                        unknown: unknown.clone()
                    }
                );
                assert!(msg.contains(&unknown), "message = {msg}");
            }
            other => panic!("expected SingularMatrix, got {other:?}"),
        }
    }

    #[test]
    fn divergence_guard_trips_on_nonfinite_step() {
        // An f64::MAX current source into a 1 kΩ resistor demands a node
        // step of ~1.8e311 V, which overflows to infinity; the guard must
        // bail on iteration 1 instead of spinning MAX_NEWTON times with
        // non-finite garbage accumulating in x.
        let mut net = Netlist::new();
        let a = net.node("a");
        net.isource("I1", Netlist::GROUND, a, Waveform::Dc(f64::MAX));
        net.resistor("R1", a, Netlist::GROUND, 1_000.0);
        let mut solver = Solver::new(&net);
        match solver.newton(vec![0.0; solver.dim()], CapMode::Open) {
            Err(SpiceError::NoConvergence { iterations, .. }) => {
                assert_eq!(iterations, 1, "guard should fire on the first step");
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn divergence_guard_trips_on_huge_branch_step() {
        // A petavolt source demands a ~1e15 V node step; the damped walk
        // (0.3 V/iter) can never get there, and the branch current blows
        // up symmetrically. Previously Newton burned all 200 iterations;
        // the pre-clamp guard now fails fast on iteration 1.
        let mut net = Netlist::new();
        let a = net.node("a");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(1.0e15));
        net.resistor("R1", a, Netlist::GROUND, 1.0);
        let mut solver = Solver::new(&net);
        match solver.newton(vec![0.0; solver.dim()], CapMode::Open) {
            Err(SpiceError::NoConvergence { iterations, .. }) => {
                assert_eq!(iterations, 1);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn warm_start_matches_cold_start_closely() {
        // Warm-starting from the converged solution itself must terminate
        // immediately at a point equal to the cold solve within the
        // solver tolerance (formatted outputs are compared bit-for-bit by
        // the CI cmp gate; raw iterates agree to ~1e-9 relative).
        use subvt_physics::{DeviceKind, DeviceParams};
        let nfet = DeviceParams::reference_90nm_nfet();
        let pfet = DeviceParams {
            kind: DeviceKind::Pfet,
            ..nfet
        };
        let nmod = nfet.mos_model();
        let pmod = pfet.mos_model();

        for vdd_mv in [200.0_f64, 250.0, 300.0, 400.0, 1200.0] {
            let vdd_v = vdd_mv / 1000.0;
            let mut net = Netlist::new();
            let vdd = net.node("vdd");
            let vin = net.node("in");
            let vout = net.node("out");
            net.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(vdd_v));
            net.vsource("VIN", vin, Netlist::GROUND, Waveform::Dc(vdd_v * 0.5));
            net.mosfet("MP", pmod, 2.0, vout, vin, vdd);
            net.mosfet("MN", nmod, 1.0, vout, vin, Netlist::GROUND);

            let cold = dc_operating_point(&net).unwrap();
            let warm = dc_operating_point_from(&net, &cold).unwrap();
            for (c, w) in cold.node_voltages.iter().zip(&warm.node_voltages) {
                let scale = c.abs().max(1e-6);
                assert!(
                    (c - w).abs() / scale < 1e-9,
                    "vdd={vdd_mv} mV: cold {c} vs warm {w}"
                );
            }
            for (c, w) in cold.branch_currents.iter().zip(&warm.branch_currents) {
                let scale = c.abs().max(1e-15);
                assert!(
                    (c - w).abs() / scale < 1e-6,
                    "vdd={vdd_mv} mV: cold {c} vs warm {w}"
                );
            }
            // Warm start from the answer converges essentially instantly.
            assert!(warm.iterations <= 3, "took {} iterations", warm.iterations);
        }
    }

    #[test]
    fn sweep_reuses_lu_factors_and_matches_pointwise_solves() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource("Vin", a, Netlist::GROUND, Waveform::Dc(0.0));
        net.resistor("R1", a, b, 1_000.0);
        net.resistor("R2", b, Netlist::GROUND, 1_000.0);
        let values: Vec<f64> = (0..8).map(|i| i as f64 * 0.25).collect();
        let swept = dc_sweep(&net, "Vin", &values).unwrap();
        for (i, &v) in values.iter().enumerate() {
            let mut point = net.clone();
            set_vsource_dc(&mut point, 0, v);
            let direct = dc_operating_point(&point).unwrap();
            assert!((swept[i].node_voltages[b] - direct.node_voltages[b]).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_netlist_is_rejected_before_solving() {
        let mut net = Netlist::new();
        let a = net.node("a");
        net.vsource("V1", a, Netlist::GROUND, Waveform::Dc(f64::NAN));
        net.resistor("R1", a, Netlist::GROUND, 1_000.0);
        assert!(matches!(
            dc_operating_point(&net),
            Err(SpiceError::InvalidNetlist { .. })
        ));
    }

    #[test]
    fn sweep_unknown_source_errors() {
        let net = Netlist::new();
        assert!(matches!(
            dc_sweep(&net, "nope", &[0.0]),
            Err(SpiceError::UnknownSource(_))
        ));
    }

    #[test]
    fn nfet_inverter_dc_rails() {
        use subvt_physics::{DeviceKind, DeviceParams};
        let nfet = DeviceParams::reference_90nm_nfet();
        let pfet = DeviceParams {
            kind: DeviceKind::Pfet,
            ..nfet
        };
        let nmod = nfet.mos_model();
        let pmod = pfet.mos_model();

        let mut net = Netlist::new();
        let vdd = net.node("vdd");
        let vin = net.node("in");
        let vout = net.node("out");
        net.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(1.2));
        net.vsource("VIN", vin, Netlist::GROUND, Waveform::Dc(0.0));
        net.mosfet("MP", pmod, 2.0, vout, vin, vdd);
        net.mosfet("MN", nmod, 1.0, vout, vin, Netlist::GROUND);

        // Input low → output high.
        let sol = dc_operating_point(&net).unwrap();
        assert!(
            (sol.node_voltages[vout] - 1.2).abs() < 0.01,
            "out = {}",
            sol.node_voltages[vout]
        );

        // Input high → output low.
        let mut net_hi = net.clone();
        set_vsource_dc(&mut net_hi, 1, 1.2);
        let sol = dc_operating_point(&net_hi).unwrap();
        assert!(
            sol.node_voltages[vout].abs() < 0.01,
            "out = {}",
            sol.node_voltages[vout]
        );
    }
}
