//! Waveform measurements: threshold crossings, propagation delay and
//! delivered supply energy.

use crate::transient::TransientResult;

/// Edge direction selector for crossing searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Low-to-high crossings only.
    Rising,
    /// High-to-low crossings only.
    Falling,
    /// Either direction.
    Any,
}

/// Finds the time of the `nth` (0-based) crossing of `level` on a node's
/// waveform, linearly interpolating between samples. Returns `None` if
/// fewer crossings exist.
pub fn crossing_time(
    result: &TransientResult,
    node: usize,
    level: f64,
    edge: Edge,
    nth: usize,
) -> Option<f64> {
    let mut seen = 0usize;
    for k in 1..result.time.len() {
        let v0 = result.voltages[k - 1][node];
        let v1 = result.voltages[k][node];
        // A sample landing exactly on `level` makes the sign product
        // vanish for both adjacent intervals; the crossing belongs to the
        // interval that *arrives* at the level (d1 == 0), never the one
        // that leaves it — except at the very first interval, where no
        // earlier interval could have claimed it.
        let d0 = v0 - level;
        let d1 = v1 - level;
        let crossed =
            d0 * d1 < 0.0 || (d1 == 0.0 && d0 != 0.0) || (k == 1 && d0 == 0.0 && d1 != 0.0);
        if !crossed {
            continue;
        }
        let rising = v1 > v0;
        let keep = match edge {
            Edge::Rising => rising,
            Edge::Falling => !rising,
            Edge::Any => true,
        };
        if !keep {
            continue;
        }
        if seen == nth {
            let t0 = result.time[k - 1];
            let t1 = result.time[k];
            let f = (level - v0) / (v1 - v0);
            return Some(t0 + f * (t1 - t0));
        }
        seen += 1;
    }
    None
}

/// 50 %-to-50 % propagation delay from an input edge to the next output
/// crossing. `swing` is the full logic swing (usually `V_dd`); the input
/// edge is located first and the output crossing searched after it.
///
/// Returns `None` if either crossing is missing.
pub fn propagation_delay(
    result: &TransientResult,
    input: usize,
    output: usize,
    swing: f64,
    input_edge: Edge,
) -> Option<f64> {
    let level = swing / 2.0;
    let t_in = crossing_time(result, input, level, input_edge, 0)?;
    // Find the first output crossing after the input edge.
    let mut nth = 0;
    loop {
        let t_out = crossing_time(result, output, level, Edge::Any, nth)?;
        if t_out > t_in {
            return Some(t_out - t_in);
        }
        nth += 1;
        if nth > 64 {
            return None;
        }
    }
}

/// Energy delivered by the voltage source with branch index `branch`
/// over the whole run: `E = ∫ V(t)·(−i_branch) dt` (branch current is
/// positive flowing pos→neg through the source, so delivery is `−i`).
///
/// `supply_node` is the node whose voltage is the source's positive
/// terminal (typically the V_dd rail).
pub fn supply_energy(result: &TransientResult, branch: usize, supply_node: usize) -> f64 {
    let mut energy = 0.0;
    for k in 1..result.time.len() {
        let dt = result.time[k] - result.time[k - 1];
        let p0 = -result.branch_currents[k - 1][branch] * result.voltages[k - 1][supply_node];
        let p1 = -result.branch_currents[k][branch] * result.voltages[k][supply_node];
        energy += 0.5 * (p0 + p1) * dt;
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Netlist, Waveform};
    use crate::transient::{transient, Integrator, TransientSpec};

    fn ramp_result() -> TransientResult {
        // Synthetic: node 1 ramps 0→1 over [0,1], node 2 ramps 1→0.
        TransientResult {
            time: (0..=10).map(|i| i as f64 / 10.0).collect(),
            voltages: (0..=10)
                .map(|i| vec![0.0, i as f64 / 10.0, 1.0 - i as f64 / 10.0])
                .collect(),
            branch_currents: (0..=10).map(|_| vec![-1.0e-3]).collect(),
            newton_iterations: vec![1; 10],
        }
    }

    #[test]
    fn crossing_interpolates() {
        let r = ramp_result();
        let t = crossing_time(&r, 1, 0.5, Edge::Rising, 0).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        let t = crossing_time(&r, 2, 0.5, Edge::Falling, 0).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        assert!(crossing_time(&r, 1, 0.5, Edge::Falling, 0).is_none());
        assert!(crossing_time(&r, 1, 2.0, Edge::Any, 0).is_none());
    }

    #[test]
    fn exact_sample_crossing_counted_once() {
        // The node-1 ramp is sampled *exactly* at swing/2 (sample 5 is
        // 0.5): the old `(v0-level)*(v1-level) <= 0` test reported the
        // same physical crossing from both adjacent intervals, so the
        // nth-crossing index was skewed by one from there on.
        let r = ramp_result();
        let t = crossing_time(&r, 1, 0.5, Edge::Any, 0).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        assert!(
            crossing_time(&r, 1, 0.5, Edge::Any, 1).is_none(),
            "a single crossing through an exact sample must count once"
        );
        // Same dedupe on the falling ramp.
        assert!((crossing_time(&r, 2, 0.5, Edge::Falling, 0).unwrap() - 0.5).abs() < 1e-12);
        assert!(crossing_time(&r, 2, 0.5, Edge::Any, 1).is_none());
    }

    #[test]
    fn waveform_starting_on_level_still_crosses() {
        // If the first sample sits exactly on the level and the waveform
        // leaves it, that departure is the (single) crossing.
        let r = TransientResult {
            time: vec![0.0, 1.0, 2.0],
            voltages: vec![vec![0.0, 0.5], vec![0.0, 1.0], vec![0.0, 1.0]],
            branch_currents: vec![vec![]; 3],
            newton_iterations: vec![1; 2],
        };
        let t = crossing_time(&r, 1, 0.5, Edge::Rising, 0).unwrap();
        assert!((t - 0.0).abs() < 1e-12);
        assert!(crossing_time(&r, 1, 0.5, Edge::Any, 1).is_none());
    }

    #[test]
    fn propagation_delay_with_exact_midpoint_samples() {
        // Input and output both sampled exactly at swing/2; the output
        // also *touches* the level once before the input edge. Each
        // exact-sample hit must occupy exactly one nth slot so the scan
        // in `propagation_delay` lands on the true post-edge crossing.
        let out = [1.0, 0.5, 1.0, 1.0, 1.0, 1.0, 0.5, 0.0, 0.0, 0.0, 0.0];
        let inp = [0.0, 0.0, 0.0, 0.0, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let r = TransientResult {
            time: (0..=10).map(|i| i as f64 / 10.0).collect(),
            voltages: (0..=10).map(|i| vec![0.0, inp[i], out[i]]).collect(),
            branch_currents: (0..=10).map(|_| vec![]).collect(),
            newton_iterations: vec![1; 10],
        };
        let d = propagation_delay(&r, 1, 2, 1.0, Edge::Rising).unwrap();
        // Input crosses at t = 0.4, output falls through 0.5 at t = 0.6.
        assert!((d - 0.2).abs() < 1e-12, "delay {d}");
    }

    #[test]
    fn energy_constant_power() {
        // 1 mA at 1 V... node 0 is ground; use node 1 ramp: energy is
        // ∫ 1mA·v(t) dt over a unit ramp = 0.5 mJ.
        let r = ramp_result();
        let e = supply_energy(&r, 0, 1);
        assert!((e - 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn rc_delay_measurement() {
        // RC low-pass driven by a step: the 50 % crossing lags the input
        // by t = RC·ln(2).
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.vsource(
            "V1",
            a,
            Netlist::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1.0e-7,
                rise: 1.0e-12,
                fall: 1.0e-12,
                width: 1.0,
                period: f64::INFINITY,
            },
        );
        net.resistor("R", a, b, 1_000.0);
        net.capacitor("C", b, Netlist::GROUND, 1.0e-9);
        let res = transient(
            &net,
            TransientSpec::with_steps(4.0e-6, 4000, Integrator::Trapezoidal),
        )
        .unwrap();
        let d = propagation_delay(&res, a, b, 1.0, Edge::Rising).unwrap();
        let want = 1.0e-6 * (2.0f64).ln();
        assert!((d / want - 1.0).abs() < 0.01, "delay {d:e} vs {want:e}");
    }
}
