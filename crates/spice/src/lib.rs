//! A small MNA circuit simulator for subthreshold CMOS studies.
//!
//! `subvt-spice` provides the circuit-simulation substrate of the `subvt`
//! workspace: netlist construction, DC operating points and sweeps
//! (Newton–Raphson with source stepping), fixed-step transient analysis
//! (backward Euler / trapezoidal), and waveform measurements. MOSFETs use
//! the compact all-region model from [`subvt_physics`].
//!
//! # Example: inverter VTC point
//!
//! ```
//! use subvt_physics::{DeviceKind, DeviceParams};
//! use subvt_spice::netlist::{Netlist, Waveform};
//! use subvt_spice::mna::dc_operating_point;
//!
//! let nfet = DeviceParams::reference_90nm_nfet();
//! let pfet = DeviceParams { kind: DeviceKind::Pfet, ..nfet };
//!
//! let mut net = Netlist::new();
//! let vdd = net.node("vdd");
//! let vin = net.node("in");
//! let out = net.node("out");
//! net.vsource("VDD", vdd, Netlist::GROUND, Waveform::Dc(0.25));
//! net.vsource("VIN", vin, Netlist::GROUND, Waveform::Dc(0.0));
//! net.mosfet("MP", pfet.mos_model(), 2.0, out, vin, vdd);
//! net.mosfet("MN", nfet.mos_model(), 1.0, out, vin, Netlist::GROUND);
//!
//! let sol = dc_operating_point(&net)?;
//! assert!(sol.node_voltages[out] > 0.2); // input low -> output high
//! # Ok::<(), subvt_spice::mna::SpiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linalg;
pub mod measure;
pub mod mna;
pub mod netlist;
pub mod parser;
pub mod transient;

pub use mna::{dc_operating_point, dc_sweep, DcSolution, SpiceError};
pub use netlist::{Netlist, Waveform};
pub use transient::{transient, Integrator, TransientResult, TransientSpec};
