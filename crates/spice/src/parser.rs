//! A SPICE-deck text parser: builds a [`Netlist`] from the classic
//! card format, so circuits can be described as data instead of code.
//!
//! Supported cards (case-insensitive, `*` comments, blank lines ignored):
//!
//! ```text
//! * element cards
//! R<name> <n+> <n-> <value>                 resistor, ohms
//! C<name> <n+> <n-> <value>                 capacitor, farads
//! V<name> <n+> <n-> <value>                 DC voltage source, volts
//! V<name> <n+> <n-> PULSE(v0 v1 td tr tf pw per)
//! I<name> <n+> <n-> <value>                 DC current source, amps
//! M<name> <d> <g> <s> <model> W=<microns>   MOSFET (model by name)
//! ```
//!
//! Values accept engineering suffixes (`f p n u m k meg g`, e.g. `1.5k`,
//! `10n`, `2u`). MOSFET model names are resolved from a caller-provided
//! library of compact models — the deck stays device-technology agnostic.
//!
//! # Examples
//!
//! ```
//! use std::collections::HashMap;
//! use subvt_spice::parser::parse_deck;
//!
//! let deck = "\
//! * rc divider
//! V1 in 0 3.0
//! R1 in out 1k
//! R2 out 0 2k
//! ";
//! let net = parse_deck(deck, &HashMap::new())?;
//! let sol = subvt_spice::dc_operating_point(&net).unwrap();
//! let out = net.find_node("out").unwrap();
//! assert!((sol.node_voltages[out] - 2.0).abs() < 1e-6);
//! # Ok::<(), subvt_spice::parser::ParseError>(())
//! ```

use std::collections::HashMap;

use subvt_physics::MosModel;

use crate::netlist::{Netlist, Waveform};

/// A deck-parsing failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending card.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an engineering-notation value (`2.2k`, `10n`, `3meg`, `1.5e-12`).
///
/// # Errors
///
/// Returns the unparsable token back as the error payload.
pub fn parse_value(token: &str) -> Result<f64, String> {
    let t = token.trim().to_ascii_lowercase();
    let (mult, stripped) = if let Some(s) = t.strip_suffix("meg") {
        (1.0e6, s)
    } else if let Some(s) = t.strip_suffix('f') {
        (1.0e-15, s)
    } else if let Some(s) = t.strip_suffix('p') {
        (1.0e-12, s)
    } else if let Some(s) = t.strip_suffix('n') {
        (1.0e-9, s)
    } else if let Some(s) = t.strip_suffix('u') {
        (1.0e-6, s)
    } else if let Some(s) = t.strip_suffix('m') {
        (1.0e-3, s)
    } else if let Some(s) = t.strip_suffix('k') {
        (1.0e3, s)
    } else if let Some(s) = t.strip_suffix('g') {
        (1.0e9, s)
    } else {
        (1.0, t.as_str())
    };
    stripped
        .parse::<f64>()
        .map(|v| v * mult)
        .map_err(|_| format!("cannot parse value `{token}`"))
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a `PULSE(v0 v1 td tr tf pw per)` source specification from the
/// already-joined argument string.
fn parse_pulse(line: usize, args: &str) -> Result<Waveform, ParseError> {
    let inner = args
        .trim()
        .strip_prefix("pulse(")
        .or_else(|| args.trim().strip_prefix("PULSE("))
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err(line, "malformed PULSE(...) specification"))?;
    let vals: Vec<f64> = inner
        .split_whitespace()
        .map(|t| parse_value(t).map_err(|m| err(line, m)))
        .collect::<Result<_, _>>()?;
    if vals.len() != 7 {
        return Err(err(
            line,
            format!("PULSE needs 7 values, got {}", vals.len()),
        ));
    }
    Ok(Waveform::Pulse {
        v0: vals[0],
        v1: vals[1],
        delay: vals[2],
        rise: vals[3],
        fall: vals[4],
        width: vals[5],
        period: if vals[6] > 0.0 {
            vals[6]
        } else {
            f64::INFINITY
        },
    })
}

/// Parses a deck into a netlist. `models` maps MOSFET model names (as
/// used on `M` cards) to compact models.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line on any malformed card,
/// unknown element letter, or unresolved model name.
pub fn parse_deck(deck: &str, models: &HashMap<String, MosModel>) -> Result<Netlist, ParseError> {
    let mut net = Netlist::new();
    for (i, raw) in deck.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') || line.starts_with(".end") {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let name = tokens[0];
        let kind = name
            .chars()
            .next()
            // Invariant: `split_whitespace` on a non-empty trimmed line
            // never yields an empty token.
            .expect("split_whitespace yields non-empty tokens")
            .to_ascii_uppercase();
        match kind {
            'R' | 'C' => {
                if tokens.len() != 4 {
                    return Err(err(line_no, format!("{name}: need `<n+> <n-> <value>`")));
                }
                let a = net.node(tokens[1]);
                let b = net.node(tokens[2]);
                let value = parse_value(tokens[3]).map_err(|m| err(line_no, m))?;
                if kind == 'R' {
                    if value <= 0.0 {
                        return Err(err(line_no, "resistance must be positive"));
                    }
                    net.resistor(name, a, b, value);
                } else {
                    if value < 0.0 {
                        return Err(err(line_no, "capacitance must be non-negative"));
                    }
                    net.capacitor(name, a, b, value);
                }
            }
            'V' | 'I' => {
                if tokens.len() < 4 {
                    return Err(err(line_no, format!("{name}: need `<n+> <n-> <value>`")));
                }
                let pos = net.node(tokens[1]);
                let neg = net.node(tokens[2]);
                let rest = tokens[3..].join(" ");
                let waveform = if rest.to_ascii_lowercase().starts_with("pulse(") {
                    parse_pulse(line_no, &rest)?
                } else if tokens.len() == 4 {
                    Waveform::Dc(parse_value(tokens[3]).map_err(|m| err(line_no, m))?)
                } else {
                    return Err(err(line_no, format!("{name}: unrecognized source spec")));
                };
                if kind == 'V' {
                    net.vsource(name, pos, neg, waveform);
                } else {
                    net.isource(name, pos, neg, waveform);
                }
            }
            'M' => {
                if tokens.len() != 6 {
                    return Err(err(
                        line_no,
                        format!("{name}: need `<d> <g> <s> <model> W=<um>`"),
                    ));
                }
                let d = net.node(tokens[1]);
                let g = net.node(tokens[2]);
                let s = net.node(tokens[3]);
                let model = models
                    .get(tokens[4])
                    .ok_or_else(|| err(line_no, format!("unknown MOSFET model `{}`", tokens[4])))?;
                let w_spec = tokens[5];
                let w_um = w_spec
                    .strip_prefix("W=")
                    .or_else(|| w_spec.strip_prefix("w="))
                    .ok_or_else(|| err(line_no, "MOSFET width must be given as W=<um>"))
                    .and_then(|v| {
                        parse_value(v).map_err(|m| err(line_no, m)).map(|x| {
                            // Widths on decks are in microns by convention
                            // here; a bare number or `u` suffix both work.
                            if v.to_ascii_lowercase().ends_with('u') {
                                x * 1.0e6
                            } else {
                                x
                            }
                        })
                    })?;
                if w_um <= 0.0 {
                    return Err(err(line_no, "MOSFET width must be positive"));
                }
                net.mosfet(name, *model, w_um, d, g, s);
            }
            other => {
                return Err(err(line_no, format!("unknown element letter `{other}`")));
            }
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::dc_operating_point;
    use subvt_physics::{DeviceKind, DeviceParams};

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("1k").unwrap(), 1.0e3);
        assert_eq!(parse_value("2.2u").unwrap(), 2.2e-6);
        assert_eq!(parse_value("10n").unwrap(), 1.0e-8);
        assert_eq!(parse_value("3meg").unwrap(), 3.0e6);
        assert_eq!(parse_value("100f").unwrap(), 1.0e-13);
        assert_eq!(parse_value("5").unwrap(), 5.0);
        assert_eq!(parse_value("1.5e-12").unwrap(), 1.5e-12);
        assert!(parse_value("abc").is_err());
    }

    #[test]
    fn parses_and_solves_divider() {
        let deck = "V1 in 0 3.0\nR1 in out 1k\nR2 out 0 2k\n";
        let net = parse_deck(deck, &HashMap::new()).unwrap();
        let sol = dc_operating_point(&net).unwrap();
        let out = net.find_node("out").unwrap();
        assert!((sol.node_voltages[out] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let deck = "* a comment\n\nV1 a 0 1.0\n* another\nR1 a 0 1k\n.end\n";
        let net = parse_deck(deck, &HashMap::new()).unwrap();
        assert_eq!(net.elements().len(), 2);
    }

    #[test]
    fn pulse_source_parses() {
        let deck = "V1 in 0 PULSE(0 1.2 1n 0.1n 0.1n 5n 10n)\nR1 in 0 1k\n";
        let net = parse_deck(deck, &HashMap::new()).unwrap();
        match &net.elements()[0].element {
            crate::netlist::Element::VSource { waveform, .. } => {
                assert!((waveform.value_at(3.0e-9) - 1.2).abs() < 1e-12);
                assert!(waveform.value_at(0.5e-9) < 1e-12);
            }
            other => panic!("expected a VSource, got {other:?}"),
        }
    }

    #[test]
    fn mosfet_inverter_deck() {
        let nfet = DeviceParams::reference_90nm_nfet();
        let pfet = DeviceParams {
            kind: DeviceKind::Pfet,
            ..nfet
        };
        let mut models = HashMap::new();
        models.insert("nch".to_owned(), nfet.mos_model());
        models.insert("pch".to_owned(), pfet.mos_model());
        let deck = "\
VDD vdd 0 1.2
VIN in 0 0.0
MP1 out in vdd pch W=2u
MN1 out in 0 nch W=1u
";
        let net = parse_deck(deck, &models).unwrap();
        let sol = dc_operating_point(&net).unwrap();
        let out = net.find_node("out").unwrap();
        assert!(
            (sol.node_voltages[out] - 1.2).abs() < 0.01,
            "inverter output high"
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let deck = "V1 a 0 1.0\nR1 a 0 zzz\n";
        let e = parse_deck(deck, &HashMap::new()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("zzz"));

        let e = parse_deck("Q1 a b c\n", &HashMap::new()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown element"));

        let e = parse_deck("M1 d g s nomodel W=1u\n", &HashMap::new()).unwrap_err();
        assert!(e.message.contains("nomodel"));
    }

    #[test]
    fn rejects_bad_cards() {
        assert!(parse_deck("R1 a 0\n", &HashMap::new()).is_err());
        assert!(parse_deck("R1 a 0 -5\n", &HashMap::new()).is_err());
        assert!(parse_deck("V1 a 0 PULSE(1 2)\n", &HashMap::new()).is_err());
    }
}
