//! Ring-oscillator analysis (extension beyond the paper's figures, used
//! as an independent delay cross-check: `f_osc = 1/(2·N·t_p)`).

use subvt_spice::measure::{crossing_time, Edge};
use subvt_spice::mna::SpiceError;
use subvt_spice::netlist::{Netlist, Waveform};
use subvt_spice::transient::{transient_from, Integrator, TransientSpec};
use subvt_units::{Seconds, Volts};

use crate::delay::analytic_fo1_delay;
use crate::inverter::{CmosPair, Inverter};

/// Measured ring-oscillator behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingOscillation {
    /// Oscillation period.
    pub period: Seconds,
    /// Implied per-stage delay `T/(2·N)`.
    pub stage_delay: Seconds,
}

/// Simulates an `N`-stage ring oscillator (N must be odd) and measures
/// its steady-state period from successive rising crossings on one node.
///
/// # Errors
///
/// Returns [`SpiceError`] if the solver fails or no oscillation is
/// detected within the simulation window.
///
/// # Panics
///
/// Panics if `stages` is even or less than 3.
pub fn ring_oscillator(
    pair: &CmosPair,
    v_dd: Volts,
    stages: usize,
    steps: usize,
) -> Result<RingOscillation, SpiceError> {
    assert!(
        stages >= 3 && stages % 2 == 1,
        "ring needs an odd stage count >= 3"
    );
    let pair = pair.at_supply(v_dd);
    let inv = Inverter::new(pair);
    let tp0 = analytic_fo1_delay(&pair, v_dd).get();
    let vdd = v_dd.as_volts();

    let mut net = Netlist::new();
    let vdd_node = net.node("vdd");
    net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd));
    let nodes: Vec<_> = (0..stages).map(|i| net.node(&format!("n{i}"))).collect();
    for i in 0..stages {
        let input = nodes[i];
        let output = nodes[(i + 1) % stages];
        inv.wire(&mut net, &format!("X{i}"), input, output, vdd_node);
        // Explicit wiring capacitance keeps every node dynamic.
        net.capacitor(&format!("Cw{i}"), output, Netlist::GROUND, 0.1e-15);
    }

    // A DC operating point would settle at the metastable midpoint, so
    // start from an asymmetric initial condition instead: alternate rails
    // around the loop (any non-equilibrium start converges to the limit
    // cycle).
    let dim_nodes = net.node_count();
    let mut x0 = subvt_spice::mna::DcSolution {
        node_voltages: vec![0.0; dim_nodes],
        branch_currents: vec![0.0; 1],
        iterations: 0,
    };
    x0.node_voltages[vdd_node] = vdd;
    for (i, &n) in nodes.iter().enumerate() {
        x0.node_voltages[n] = if i % 2 == 0 { vdd } else { 0.0 };
    }

    let t_stop = 8.0 * stages as f64 * tp0;
    let spec = TransientSpec::with_steps(t_stop, steps.max(500), Integrator::Trapezoidal);
    let res = transient_from(&net, spec, &x0)?;

    // Period: spacing between late rising crossings (skip the start-up
    // transient by taking crossings near the end of the run).
    let mut crossings = Vec::new();
    let mut nth = 0;
    while let Some(t) = crossing_time(&res, nodes[0], vdd / 2.0, Edge::Rising, nth) {
        crossings.push(t);
        nth += 1;
        if nth > 256 {
            break;
        }
    }
    if crossings.len() < 3 {
        return Err(SpiceError::NoConvergence {
            iterations: 0,
            residual: f64::NAN,
        });
    }
    let k = crossings.len();
    let period = crossings[k - 1] - crossings[k - 2];
    Ok(RingOscillation {
        period: Seconds::new(period),
        stage_delay: Seconds::new(period / (2.0 * stages as f64)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_physics::device::DeviceParams;

    #[test]
    fn ring_oscillates_in_subthreshold() {
        let pair = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
        let osc = ring_oscillator(&pair, Volts::new(0.25), 5, 1500).unwrap();
        assert!(osc.period.get() > 0.0);
        // Stage delay within ~4x of the analytic FO1 delay (the ring
        // stage is lighter loaded than true FO1 plus wiring cap).
        let tp = analytic_fo1_delay(&pair, Volts::new(0.25)).get();
        let ratio = osc.stage_delay.get() / tp;
        assert!((0.2..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn rejects_even_rings() {
        let pair = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
        let _ = ring_oscillator(&pair, Volts::new(0.25), 4, 100);
    }
}
