//! Ring-oscillator analysis (extension beyond the paper's figures, used
//! as an independent delay cross-check: `f_osc = 1/(2·N·t_p)`).

use subvt_spice::mna::SpiceError;
use subvt_units::{Seconds, Volts};

use crate::inverter::CmosPair;
use crate::topology::{Cell, CellSpec, Load, Testbench};

/// Measured ring-oscillator behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingOscillation {
    /// Oscillation period.
    pub period: Seconds,
    /// Implied per-stage delay `T/(2·N)`.
    pub stage_delay: Seconds,
}

/// Simulates an `N`-stage ring oscillator (N must be odd) and measures
/// its steady-state period from successive rising crossings on one node.
///
/// # Errors
///
/// Returns [`SpiceError`] if the solver fails or no oscillation is
/// detected within the simulation window.
///
/// # Panics
///
/// Panics if `stages` is even or less than 3.
pub fn ring_oscillator(
    pair: &CmosPair,
    v_dd: Volts,
    stages: usize,
    steps: usize,
) -> Result<RingOscillation, SpiceError> {
    assert!(
        stages >= 3 && stages % 2 == 1,
        "ring needs an odd stage count >= 3"
    );
    let bench = CellSpec {
        cell: Cell::RingOsc(stages),
        pair: *pair,
        load: Load::Farads(0.1e-15),
    }
    .compile(&Testbench::Oscillation { v_dd, steps })
    .expect("odd rings always compile an oscillation bench");
    let res = bench.run_transient()?;
    bench
        .measure_oscillation(&res)
        .ok_or(crate::topology::MEASUREMENT_FAILED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::analytic_fo1_delay;
    use subvt_physics::device::DeviceParams;

    #[test]
    fn ring_oscillates_in_subthreshold() {
        let pair = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
        let osc = ring_oscillator(&pair, Volts::new(0.25), 5, 1500).unwrap();
        assert!(osc.period.get() > 0.0);
        // Stage delay within ~4x of the analytic FO1 delay (the ring
        // stage is lighter loaded than true FO1 plus wiring cap).
        let tp = analytic_fo1_delay(&pair, Volts::new(0.25)).get();
        let ratio = osc.stage_delay.get() / tp;
        assert!((0.2..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn rejects_even_rings() {
        let pair = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
        let _ = ring_oscillator(&pair, Volts::new(0.25), 4, 100);
    }
}
