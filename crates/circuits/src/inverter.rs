//! CMOS inverter construction and voltage-transfer characteristics.
//!
//! Two VTC engines are provided:
//!
//! * [`Inverter::vtc`] — the SPICE engine: a DC sweep of the full MNA
//!   system with the all-region device model (works at any supply).
//! * [`analytic_vtc`] — the paper's Eq. 3(b): the closed-form
//!   weak-inversion VTC obtained by equating NFET and PFET Eq. 1
//!   currents (valid for sub-V_th supplies), used to cross-check the
//!   simulator.

use crate::topology::{CellSpec, MeasurePlan, Testbench};
use subvt_engine::trace;
use subvt_model::{DeviceModel, ModelError};
use subvt_physics::device::{DeviceCharacteristics, DeviceKind, DeviceParams};
use subvt_physics::iv::MosModel;
use subvt_physics::math::{bisect, linspace};
use subvt_spice::mna::SpiceError;
use subvt_spice::netlist::{Netlist, NodeId};
use subvt_units::Volts;

/// A complementary device pair with widths — the unit cell every analysis
/// in this crate is built from.
///
/// Characterizations are produced lazily through the pair's
/// [`DeviceModel`] backend (analytic unless built with
/// [`CmosPair::balanced_with`] or [`CmosPair::from_parts`]), so mutating
/// the public device fields — e.g. re-biasing via [`CmosPair::at_supply`]
/// or skewing a polarity in a study — can never leave stale
/// characteristics behind.
#[derive(Debug, Clone, Copy)]
pub struct CmosPair {
    /// The n-channel device.
    pub nfet: DeviceParams,
    /// The p-channel device.
    pub pfet: DeviceParams,
    /// NFET width in microns.
    pub wn_um: f64,
    /// PFET width in microns.
    pub wp_um: f64,
    model: &'static dyn DeviceModel,
}

impl PartialEq for CmosPair {
    fn eq(&self, other: &Self) -> bool {
        self.nfet == other.nfet
            && self.pfet == other.pfet
            && self.wn_um == other.wn_um
            && self.wp_um == other.wp_um
            && self.model.cache_id() == other.model.cache_id()
    }
}

/// How a [`CmosPair::balanced_with`] sizing computation arrived at its
/// P/N width ratio.
///
/// The balancing rule wants `W_p/W_n = I₀_n/I₀_p` (Eq. 3(c) symmetry),
/// but the implementable layout range is bounded: the ratio is applied
/// within [`BalanceReport::RATIO_RANGE`]. A target outside that range is
/// clamped to the nearest bound and reported here — the pair is then
/// *not* strength-balanced, and callers that care (skew studies, strongly
/// asymmetric backends) must check [`BalanceReport::clamped`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceReport {
    /// The width ratio `I₀_n/I₀_p` the devices ask for.
    pub target_ratio: f64,
    /// The width ratio actually applied (`wp_um / wn_um`).
    pub applied_ratio: f64,
    /// Whether the target fell outside the implementable range.
    pub clamped: bool,
}

impl BalanceReport {
    /// Implementable P/N width-ratio range `[min, max]`.
    pub const RATIO_RANGE: (f64, f64) = (1.0, 4.0);
}

impl CmosPair {
    /// Builds a pair from an NFET description, deriving the PFET by
    /// polarity flip and sizing it so the subthreshold drive strengths
    /// balance (`W_p·I₀_p ≈ W_n·I₀_n`) — the symmetric-VTC condition the
    /// paper assumes in Eq. 3(c). Evaluated with the analytic backend.
    ///
    /// The width ratio is applied within
    /// [`BalanceReport::RATIO_RANGE`]; use [`CmosPair::balanced_report`]
    /// to detect a clamped (unbalanceable) device.
    pub fn balanced(nfet: DeviceParams) -> Self {
        Self::balanced_with(subvt_model::analytic(), nfet).expect("analytic backend is infallible")
    }

    /// [`CmosPair::balanced`] through an explicit model backend. The
    /// width ratio is applied within [`BalanceReport::RATIO_RANGE`]; a
    /// clamp is recorded in the `circuits.balance.clamped` trace counter,
    /// and [`CmosPair::balanced_report`] returns the full report.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the backend.
    ///
    /// # Panics
    ///
    /// Panics if `nfet` is not an NFET description.
    pub fn balanced_with(
        model: &'static dyn DeviceModel,
        nfet: DeviceParams,
    ) -> Result<Self, ModelError> {
        Self::balanced_report(model, nfet).map(|(pair, _)| pair)
    }

    /// [`CmosPair::balanced_with`] returning the sizing outcome alongside
    /// the pair: the strength ratio the devices asked for, the width
    /// ratio actually applied, and whether the target was clamped to the
    /// implementable range (in which case the pair is *not* balanced).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`] from the backend.
    ///
    /// # Panics
    ///
    /// Panics if `nfet` is not an NFET description.
    pub fn balanced_report(
        model: &'static dyn DeviceModel,
        nfet: DeviceParams,
    ) -> Result<(Self, BalanceReport), ModelError> {
        assert!(
            matches!(nfet.kind, DeviceKind::Nfet),
            "expected an NFET description"
        );
        let pfet = DeviceParams {
            kind: DeviceKind::Pfet,
            ..nfet
        };
        let i0_n = model.characterize(&nfet)?.i0.get();
        let i0_p = model.characterize(&pfet)?.i0.get();
        let (lo, hi) = BalanceReport::RATIO_RANGE;
        let target_ratio = i0_n / i0_p;
        let applied_ratio = target_ratio.clamp(lo, hi);
        let report = BalanceReport {
            target_ratio,
            applied_ratio,
            clamped: applied_ratio != target_ratio,
        };
        if report.clamped {
            trace::add("circuits.balance.clamped", 1);
            trace::gauge("circuits.balance.target_ratio", target_ratio);
        }
        let wn_um = 1.0;
        let wp_um = applied_ratio;
        Ok((
            Self {
                nfet,
                pfet,
                wn_um,
                wp_um,
                model,
            },
            report,
        ))
    }

    /// Assembles a pair from already-designed devices and widths, bound
    /// to the given model backend.
    pub fn from_parts(
        nfet: DeviceParams,
        pfet: DeviceParams,
        wn_um: f64,
        wp_um: f64,
        model: &'static dyn DeviceModel,
    ) -> Self {
        Self {
            nfet,
            pfet,
            wn_um,
            wp_um,
            model,
        }
    }

    /// The model backend this pair characterizes its devices through.
    pub fn model(&self) -> &'static dyn DeviceModel {
        self.model
    }

    /// NFET characterization through the pair's backend.
    ///
    /// # Panics
    ///
    /// Panics if the backend fails (the analytic backend cannot).
    pub fn nfet_chars(&self) -> DeviceCharacteristics {
        self.model
            .characterize(&self.nfet)
            .expect("model backend failed on NFET")
    }

    /// PFET characterization through the pair's backend.
    ///
    /// # Panics
    ///
    /// Panics if the backend fails (the analytic backend cannot).
    pub fn pfet_chars(&self) -> DeviceCharacteristics {
        self.model
            .characterize(&self.pfet)
            .expect("model backend failed on PFET")
    }

    /// All-region I–V model of the NFET, built on the pair's backend
    /// characterization.
    pub fn nfet_model(&self) -> MosModel {
        MosModel::from_device(&self.nfet, &self.nfet_chars())
    }

    /// All-region I–V model of the PFET, built on the pair's backend
    /// characterization.
    pub fn pfet_model(&self) -> MosModel {
        MosModel::from_device(&self.pfet, &self.pfet_chars())
    }

    /// The supply voltage both devices were described at.
    pub fn v_dd(&self) -> Volts {
        self.nfet.v_dd
    }

    /// Returns a copy of the pair re-characterized at a different supply.
    pub fn at_supply(&self, v_dd: Volts) -> Self {
        let mut out = *self;
        out.nfet.v_dd = v_dd;
        out.pfet.v_dd = v_dd;
        out
    }

    /// Total switched capacitance of one inverter input (gate caps of
    /// both devices), farads.
    pub fn input_capacitance(&self) -> f64 {
        let cn = self.nfet_chars().c_g.get() * self.wn_um;
        let cp = self.pfet_chars().c_g.get() * self.wp_um;
        cn + cp
    }

    /// Drain parasitic capacitance at the shared output node, farads.
    pub fn output_capacitance(&self) -> f64 {
        let cn = self.nfet_chars().c_drain.get() * self.wn_um;
        let cp = self.pfet_chars().c_drain.get() * self.wp_um;
        cn + cp
    }

    /// Average off-state leakage of the inverter (mean of the two input
    /// states), amps.
    pub fn leakage_current(&self) -> f64 {
        let i_n = self.nfet_chars().i_off.get() * self.wn_um;
        let i_p = self.pfet_chars().i_off.get() * self.wp_um;
        0.5 * (i_n + i_p)
    }
}

/// A single CMOS inverter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inverter {
    /// Device pair the inverter instantiates.
    pub pair: CmosPair,
}

/// One sampled voltage-transfer characteristic.
#[derive(Debug, Clone, PartialEq)]
pub struct Vtc {
    /// Input voltages, ascending.
    pub v_in: Vec<f64>,
    /// Corresponding output voltages.
    pub v_out: Vec<f64>,
    /// Supply the curve was traced at.
    pub v_dd: f64,
}

impl Vtc {
    /// Numerical gain `dV_out/dV_in` at each interior sample (central
    /// differences; endpoints copy their neighbours).
    pub fn gain(&self) -> Vec<f64> {
        let n = self.v_in.len();
        let mut g = vec![0.0; n];
        for (i, slot) in g.iter_mut().enumerate().take(n - 1).skip(1) {
            *slot = (self.v_out[i + 1] - self.v_out[i - 1]) / (self.v_in[i + 1] - self.v_in[i - 1]);
        }
        if n >= 2 {
            g[0] = g[1];
            g[n - 1] = g[n - 2];
        }
        g
    }

    /// Switching threshold: input where `v_out` crosses `v_dd/2`.
    pub fn switching_threshold(&self) -> Option<f64> {
        let half = self.v_dd / 2.0;
        for i in 1..self.v_in.len() {
            let (a, b) = (self.v_out[i - 1], self.v_out[i]);
            if (a - half) * (b - half) <= 0.0 && a != b {
                let f = (half - a) / (b - a);
                return Some(self.v_in[i - 1] + f * (self.v_in[i] - self.v_in[i - 1]));
            }
        }
        None
    }
}

impl Inverter {
    /// Creates an inverter from a device pair.
    pub fn new(pair: CmosPair) -> Self {
        Self { pair }
    }

    /// Wires this inverter into a netlist.
    ///
    /// The compact [`subvt_physics::MosModel`] is resistive, so the
    /// devices' gate and drain capacitances are added as explicit
    /// grounded capacitors at the input and output nodes (the Miller
    /// gate-drain split is lumped to ground — adequate for delay and
    /// energy at the fan-out-of-one granularity this crate measures).
    pub fn wire(
        &self,
        net: &mut Netlist,
        name: &str,
        input: NodeId,
        output: NodeId,
        vdd_node: NodeId,
    ) {
        net.mosfet(
            &format!("{name}.MP"),
            self.pair.pfet_model(),
            self.pair.wp_um,
            output,
            input,
            vdd_node,
        );
        net.mosfet(
            &format!("{name}.MN"),
            self.pair.nfet_model(),
            self.pair.wn_um,
            output,
            input,
            Netlist::GROUND,
        );
        net.capacitor(
            &format!("{name}.Cin"),
            input,
            Netlist::GROUND,
            self.pair.input_capacitance(),
        );
        net.capacitor(
            &format!("{name}.Cout"),
            output,
            Netlist::GROUND,
            self.pair.output_capacitance(),
        );
    }

    /// Builds the VTC test-bench netlist at supply `v_dd`: a `VDD` rail
    /// source, a sweepable `VIN` source and the inverter wired between
    /// them. Returns the netlist and the output node to sample — shared
    /// by [`Inverter::vtc`] and the circuit backends, so the deck a DC
    /// sweep solves is identical however the curve is requested.
    pub fn vtc_netlist(&self, v_dd: Volts) -> (Netlist, NodeId) {
        let bench = CellSpec::inverter(self.pair)
            .compile(&Testbench::Vtc {
                v_dd,
                // Points only parameterize the sweep plan, not the deck.
                points: 2,
                other: crate::gates::OtherInput::Low,
            })
            .expect("inverters always compile a VTC bench");
        let MeasurePlan::DcTransfer { output, .. } = bench.plan else {
            unreachable!("VTC benches carry a transfer plan");
        };
        (bench.net, output)
    }

    /// Traces the VTC by a SPICE DC sweep with `points` samples at supply
    /// `v_dd`.
    ///
    /// # Errors
    ///
    /// Propagates [`SpiceError`] from the solver.
    pub fn vtc(&self, v_dd: Volts, points: usize) -> Result<Vtc, SpiceError> {
        CellSpec::inverter(self.pair)
            .compile(&Testbench::Vtc {
                v_dd,
                points,
                other: crate::gates::OtherInput::Low,
            })
            .expect("inverters always compile a VTC bench")
            .run_transfer()
    }
}

/// The paper's Eq. 3(b): closed-form weak-inversion VTC. Solves the
/// current balance for `v_out` at each `v_in` by bisection of the
/// monotone balance residual (robust against the near-vertical transition
/// region). Device asymmetry enters through `I₀` ratios and slope
/// factors.
pub fn analytic_vtc(pair: &CmosPair, v_dd: Volts, points: usize) -> Vtc {
    let n = pair.nfet_chars();
    let p = pair.pfet_chars();
    let vt = pair.nfet.temperature.thermal_voltage().as_volts();
    let vdd = v_dd.as_volts();
    let io_n = n.i0.get() * pair.wn_um;
    let io_p = p.i0.get() * pair.wp_um;
    let (m_n, m_p) = (n.m, p.m);
    let (vth_n, vth_p) = (n.v_th_sat.as_volts(), p.v_th_sat.as_volts());

    // Eq. 3(a) balance: I_N(v_in, v_out) = I_P(v_dd − v_in, v_dd − v_out).
    let residual = |v_in: f64, v_out: f64| {
        let i_n = io_n * ((v_in - vth_n) / (m_n * vt)).exp() * (1.0 - (-v_out / vt).exp());
        let i_p =
            io_p * ((vdd - v_in - vth_p) / (m_p * vt)).exp() * (1.0 - (-(vdd - v_out) / vt).exp());
        i_n - i_p
    };

    let v_in = linspace(0.0, vdd, points.max(2));
    let v_out = v_in
        .iter()
        .map(|&vi| {
            let eps = 1e-9;
            match bisect(|vo| residual(vi, vo), eps, vdd - eps, 1e-12, 200) {
                Ok(root) => root.x,
                // Balance pinned at a rail (very skewed corner).
                Err(_) => {
                    if residual(vi, vdd / 2.0) > 0.0 {
                        0.0
                    } else {
                        vdd
                    }
                }
            }
        })
        .collect();
    Vtc {
        v_in,
        v_out,
        v_dd: vdd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> CmosPair {
        CmosPair::balanced(DeviceParams::reference_90nm_nfet())
    }

    #[test]
    fn balanced_pair_upsizes_pfet() {
        let p = pair();
        assert!(p.wp_um > p.wn_um);
    }

    /// A backend that weakens one polarity's `I₀` by a fixed factor,
    /// pushing the balance target outside the implementable range.
    #[derive(Debug)]
    struct SkewModel {
        /// Multiplier applied to the PFET `I₀`.
        pfet_i0_scale: f64,
    }

    impl subvt_model::DeviceModel for SkewModel {
        fn name(&self) -> &'static str {
            "skew-test"
        }
        fn characterize(
            &self,
            params: &DeviceParams,
        ) -> Result<subvt_physics::device::DeviceCharacteristics, ModelError> {
            let mut chars = params.characterize();
            if matches!(params.kind, DeviceKind::Pfet) {
                chars.i0 = subvt_units::AmpsPerMicron::new(chars.i0.get() * self.pfet_i0_scale);
            }
            Ok(chars)
        }
    }

    #[test]
    fn skewed_device_reports_clamped_balance() {
        // Scaling the PFET I₀ down 20× pushes the requested width ratio
        // far above the implementable maximum: the ratio is clamped to
        // the upper bound and the clamp is reported instead of silently
        // producing an unbalanced pair labeled "balanced".
        static WEAK_P: SkewModel = SkewModel {
            pfet_i0_scale: 0.05,
        };
        let (pair, report) =
            CmosPair::balanced_report(&WEAK_P, DeviceParams::reference_90nm_nfet()).unwrap();
        let (lo, hi) = BalanceReport::RATIO_RANGE;
        assert!(report.clamped, "20x-weak PFET must report a clamp");
        assert!(report.target_ratio > hi, "target {}", report.target_ratio);
        assert_eq!(report.applied_ratio, hi);
        assert_eq!(pair.wp_um, hi * pair.wn_um);

        // The opposite skew clamps at the lower bound.
        static STRONG_P: SkewModel = SkewModel {
            pfet_i0_scale: 100.0,
        };
        let (pair, report) =
            CmosPair::balanced_report(&STRONG_P, DeviceParams::reference_90nm_nfet()).unwrap();
        assert!(report.clamped);
        assert!(report.target_ratio < lo);
        assert_eq!(pair.wp_um, lo * pair.wn_um);
    }

    #[test]
    fn reference_device_balances_without_clamp() {
        let (pair, report) =
            CmosPair::balanced_report(subvt_model::analytic(), DeviceParams::reference_90nm_nfet())
                .unwrap();
        assert!(!report.clamped, "report: {report:?}");
        assert_eq!(report.applied_ratio, report.target_ratio);
        assert_eq!(pair.wp_um, report.applied_ratio * pair.wn_um);
    }

    #[test]
    fn vtc_swings_rail_to_rail_subthreshold() {
        let inv = Inverter::new(pair());
        let vtc = inv.vtc(Volts::new(0.25), 41).unwrap();
        assert!(vtc.v_out[0] > 0.24, "low in → high out: {}", vtc.v_out[0]);
        assert!(vtc.v_out[40] < 0.01, "high in → low out: {}", vtc.v_out[40]);
    }

    #[test]
    fn vtc_is_monotone_decreasing() {
        let inv = Inverter::new(pair());
        let vtc = inv.vtc(Volts::new(0.25), 61).unwrap();
        for w in vtc.v_out.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "VTC must fall monotonically");
        }
    }

    #[test]
    fn switching_threshold_near_midrail() {
        let inv = Inverter::new(pair());
        let vtc = inv.vtc(Volts::new(0.25), 101).unwrap();
        let vm = vtc.switching_threshold().unwrap();
        assert!(
            (vm - 0.125).abs() < 0.05,
            "V_M = {vm} should be near V_dd/2 for a balanced pair"
        );
    }

    #[test]
    fn peak_gain_exceeds_unity() {
        let inv = Inverter::new(pair());
        let vtc = inv.vtc(Volts::new(0.25), 201).unwrap();
        let min_gain = vtc.gain().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min_gain < -1.5, "peak |gain| = {}", -min_gain);
    }

    #[test]
    fn analytic_vtc_matches_spice_in_subthreshold() {
        let p = pair().at_supply(Volts::new(0.25));
        let spice = Inverter::new(p).vtc(Volts::new(0.25), 41).unwrap();
        let analytic = analytic_vtc(&p, Volts::new(0.25), 41);
        // Pointwise agreement within 50 mV (the steep transition
        // amplifies any threshold-model difference vertically)…
        for i in 0..spice.v_in.len() {
            assert!(
                (spice.v_out[i] - analytic.v_out[i]).abs() < 0.05,
                "v_in = {}: spice {} vs analytic {}",
                spice.v_in[i],
                spice.v_out[i],
                analytic.v_out[i]
            );
        }
        // …and the switching thresholds within 10 mV horizontally.
        let vm_s = spice.switching_threshold().unwrap();
        let vm_a = analytic.switching_threshold().unwrap();
        assert!((vm_s - vm_a).abs() < 0.010, "V_M: {vm_s} vs {vm_a}");
    }

    #[test]
    fn analytic_vtc_symmetric_for_matched_devices() {
        // With I₀, m and V_th matched, Eq. 3(c) predicts a VTC symmetric
        // about (V_dd/2, V_dd/2).
        let mut p = pair();
        // Force exact symmetry: same device both sides.
        p.pfet = DeviceParams {
            kind: DeviceKind::Pfet,
            ..p.nfet
        };
        let i0n = p.nfet.characterize().i0.get();
        let i0p = p.pfet.characterize().i0.get();
        p.wp_um = p.wn_um * i0n / i0p;
        let vtc = analytic_vtc(&p, Volts::new(0.25), 81);
        let n = vtc.v_in.len();
        for i in 0..n {
            let j = n - 1 - i;
            let sym = 0.25 - vtc.v_out[j];
            assert!(
                (vtc.v_out[i] - sym).abs() < 1e-3,
                "symmetry violated at {}",
                vtc.v_in[i]
            );
        }
    }
}
