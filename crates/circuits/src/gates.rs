//! Static CMOS logic gates beyond the inverter: NAND2 and NOR2.
//!
//! Stacked transistors matter in subthreshold: a 2-high stack loses
//! roughly a factor `e^{ΔV/v_T}` of drive because the intermediate node
//! lifts the bottom device's source, so gate sizing and worst-case input
//! vectors behave differently than above threshold. This module wires
//! the gates from the same [`CmosPair`] devices and measures worst-case
//! transfer curves and delay.

use subvt_spice::mna::SpiceError;
use subvt_spice::netlist::{Netlist, NodeId};
use subvt_units::Volts;

use crate::inverter::{CmosPair, Vtc};
use crate::topology::{CellSpec, Testbench};

/// Two-input gate flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// 2-input NAND: series NFET stack, parallel PFETs.
    Nand2,
    /// 2-input NOR: parallel NFETs, series PFET stack.
    Nor2,
}

/// Input vector for the un-swept input of a two-input gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OtherInput {
    /// Tied high (to V_dd).
    High,
    /// Tied low (to ground).
    Low,
    /// Tied to the swept input (both inputs switch together).
    Common,
}

/// A two-input static CMOS gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gate2 {
    /// The unit device pair.
    pub pair: CmosPair,
    /// Gate flavour.
    pub kind: GateKind,
}

impl Gate2 {
    /// Creates a NAND2 from a device pair.
    pub fn nand2(pair: CmosPair) -> Self {
        Self {
            pair,
            kind: GateKind::Nand2,
        }
    }

    /// Creates a NOR2 from a device pair.
    pub fn nor2(pair: CmosPair) -> Self {
        Self {
            pair,
            kind: GateKind::Nor2,
        }
    }

    /// Wires the gate into a netlist. The series stack is *not* upsized
    /// (minimum-size subthreshold convention — upsizing buys little
    /// because stack resistance is exponential, not linear).
    pub fn wire(
        &self,
        net: &mut Netlist,
        name: &str,
        input_a: NodeId,
        input_b: NodeId,
        output: NodeId,
        vdd_node: NodeId,
    ) {
        let nmod = self.pair.nfet_model();
        let pmod = self.pair.pfet_model();
        let (wn, wp) = (self.pair.wn_um, self.pair.wp_um);
        let mid = net.node(&format!("{name}.mid"));
        match self.kind {
            GateKind::Nand2 => {
                // Parallel PFETs to V_dd.
                net.mosfet(&format!("{name}.MPA"), pmod, wp, output, input_a, vdd_node);
                net.mosfet(&format!("{name}.MPB"), pmod, wp, output, input_b, vdd_node);
                // Series NFET stack to ground.
                net.mosfet(&format!("{name}.MNA"), nmod, wn, output, input_a, mid);
                net.mosfet(
                    &format!("{name}.MNB"),
                    nmod,
                    wn,
                    mid,
                    input_b,
                    Netlist::GROUND,
                );
            }
            GateKind::Nor2 => {
                // Series PFET stack from V_dd.
                net.mosfet(&format!("{name}.MPA"), pmod, wp, mid, input_a, vdd_node);
                net.mosfet(&format!("{name}.MPB"), pmod, wp, output, input_b, mid);
                // Parallel NFETs to ground.
                net.mosfet(
                    &format!("{name}.MNA"),
                    nmod,
                    wn,
                    output,
                    input_a,
                    Netlist::GROUND,
                );
                net.mosfet(
                    &format!("{name}.MNB"),
                    nmod,
                    wn,
                    output,
                    input_b,
                    Netlist::GROUND,
                );
            }
        }
        // Lumped device capacitances (two gate loads at each input node
        // are owned by the driver; here we add the output parasitics).
        net.capacitor(
            &format!("{name}.Cout"),
            output,
            Netlist::GROUND,
            2.0 * self.pair.output_capacitance(),
        );
        net.capacitor(
            &format!("{name}.Cmid"),
            mid,
            Netlist::GROUND,
            0.5 * self.pair.output_capacitance(),
        );
    }

    /// Transfer curve sweeping input A with input B per `other`.
    ///
    /// # Errors
    ///
    /// Propagates [`SpiceError`] from the solver.
    pub fn vtc(&self, v_dd: Volts, other: OtherInput, points: usize) -> Result<Vtc, SpiceError> {
        CellSpec::gate(self.kind, self.pair)
            .compile(&Testbench::Vtc {
                v_dd,
                points,
                other,
            })
            .expect("gate cells always compile a VTC bench")
            .run_transfer()
    }

    /// Worst-case static noise margin over the standard input vectors
    /// (each single input switching with the other at its non-controlling
    /// value, plus both switching together).
    ///
    /// # Errors
    ///
    /// Propagates [`SpiceError`] from the sweeps.
    pub fn worst_case_snm(&self, v_dd: Volts, points: usize) -> Result<f64, SpiceError> {
        let others = match self.kind {
            // NAND: non-controlling value is high.
            GateKind::Nand2 => [OtherInput::High, OtherInput::Common],
            // NOR: non-controlling value is low.
            GateKind::Nor2 => [OtherInput::Low, OtherInput::Common],
        };
        let mut worst = f64::INFINITY;
        for other in others {
            let vtc = self.vtc(v_dd, other, points)?;
            if let Some(nm) = crate::snm::noise_margins(&vtc) {
                worst = worst.min(nm.snm());
            }
        }
        if worst.is_finite() {
            Ok(worst)
        } else {
            Err(SpiceError::NoConvergence {
                iterations: 0,
                residual: f64::NAN,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverter::Inverter;
    use crate::snm::noise_margins;
    use subvt_physics::device::DeviceParams;

    fn pair() -> CmosPair {
        CmosPair::balanced(DeviceParams::reference_90nm_nfet())
    }

    #[test]
    fn nand_truth_table_end_points() {
        let g = Gate2::nand2(pair());
        let vdd = Volts::new(0.25);
        // B high, A swept: output follows NOT(A).
        let vtc = g.vtc(vdd, OtherInput::High, 21).unwrap();
        assert!(vtc.v_out[0] > 0.24, "A=0,B=1 -> 1");
        assert!(vtc.v_out[20] < 0.02, "A=1,B=1 -> 0");
        // B low: output stuck high regardless of A.
        let vtc = g.vtc(vdd, OtherInput::Low, 21).unwrap();
        assert!(vtc.v_out[0] > 0.24 && vtc.v_out[20] > 0.24);
    }

    #[test]
    fn nor_truth_table_end_points() {
        let g = Gate2::nor2(pair());
        let vdd = Volts::new(0.25);
        // B low, A swept: output follows NOT(A).
        let vtc = g.vtc(vdd, OtherInput::Low, 21).unwrap();
        assert!(vtc.v_out[0] > 0.24, "A=0,B=0 -> 1");
        assert!(vtc.v_out[20] < 0.02, "A=1,B=0 -> 0");
        // B high: output stuck low.
        let vtc = g.vtc(vdd, OtherInput::High, 21).unwrap();
        assert!(vtc.v_out[0] < 0.02 && vtc.v_out[20] < 0.02);
    }

    #[test]
    fn gate_snm_below_inverter_snm() {
        // Stacks and skewed switching thresholds cost noise margin
        // relative to the balanced inverter.
        let p = pair();
        let vdd = Volts::new(0.25);
        let inv = noise_margins(&Inverter::new(p).vtc(vdd, 121).unwrap())
            .unwrap()
            .snm();
        let nand = Gate2::nand2(p).worst_case_snm(vdd, 121).unwrap();
        let nor = Gate2::nor2(p).worst_case_snm(vdd, 121).unwrap();
        assert!(nand < inv * 1.02, "NAND {nand} vs inverter {inv}");
        assert!(nor < inv * 1.02, "NOR {nor} vs inverter {inv}");
        assert!(nand > 0.0 && nor > 0.0);
    }

    #[test]
    fn common_input_switching_is_sharper_for_nand() {
        // Both inputs switching drives both stacked NFETs: the NAND
        // transition shifts versus the single-input case.
        let g = Gate2::nand2(pair());
        let vdd = Volts::new(0.25);
        let single = g.vtc(vdd, OtherInput::High, 81).unwrap();
        let common = g.vtc(vdd, OtherInput::Common, 81).unwrap();
        let vm_single = single.switching_threshold().unwrap();
        let vm_common = common.switching_threshold().unwrap();
        assert!(
            (vm_single - vm_common).abs() > 0.002,
            "input vectors must shift V_M: {vm_single} vs {vm_common}"
        );
    }
}
