//! Declarative topology layer: typed cells and testbenches compiled to
//! netlists plus measurement plans.
//!
//! Every netlist this crate simulates is produced here. A [`CellSpec`]
//! names *what* is wired (the cell topology, the device pair that
//! populates it and the output load); a [`Testbench`] names *how* it is
//! excited and observed (a DC transfer sweep, a delay or energy
//! transient, a static-leakage vector, or a free-running oscillation).
//! [`CellSpec::compile`] deterministically lowers the two into a
//! [`CompiledBench`]: a [`subvt_spice::Netlist`] and a [`MeasurePlan`]
//! describing the solve and the probes.
//!
//! The compiler is the single source of node ordering, element naming
//! and stimulus timing, so two callers asking for the same measurement
//! always solve the same deck — and [`CompiledBench::key`] derives the
//! one canonical cache key (device-model id + the [`Netlist`]'s
//! [`subvt_engine::Keyed`] content stream + the plan's solve
//! parameters) that the memoizing circuit backend and the cached
//! gate/ring/temperature evaluators below all share.

use subvt_engine::{global_cache, trace, KeyBuilder, Keyed};
use subvt_spice::measure::{crossing_time, Edge};
use subvt_spice::mna::{dc_operating_point, dc_sweep, DcSolution, SpiceError};
use subvt_spice::netlist::{Element, Netlist, NodeId, Waveform};
use subvt_spice::transient::{
    transient, transient_from, Integrator, TransientResult, TransientSpec,
};
use subvt_units::{Seconds, Volts};

use subvt_physics::math::linspace;

use crate::delay::analytic_fo1_delay;
use crate::gates::{Gate2, GateKind, OtherInput};
use crate::inverter::{CmosPair, Inverter, Vtc};
use crate::ring::RingOscillation;

/// Cache namespace for DC-derived records (transfer curves, leakage
/// vectors) produced through the topology layer — shared with the spice
/// circuit backend so one warm cache covers both.
const TOPO_VTC_NS: &str = "spice.vtc";

/// Cache namespace for transient-derived records (ring periods).
const TOPO_TRAN_NS: &str = "spice.tran";

/// A cell topology. The device sizing comes from the [`CellSpec`]'s
/// [`CmosPair`]; the cell only names the wiring pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// A single static CMOS inverter.
    Inverter,
    /// Two-input NAND: series NFET stack, parallel PFETs.
    Nand2,
    /// Two-input NOR: parallel NFETs, series PFET stack.
    Nor2,
    /// `n` identical inverters in series (delay/energy chains).
    InverterChain(usize),
    /// An `n`-stage ring oscillator (`n` odd, ≥ 3).
    RingOsc(usize),
    /// The read-disturbed half of a 6T SRAM cell: one storage inverter
    /// plus an NFET access device of the given width against a
    /// precharged bit-line.
    SramCell {
        /// Access transistor width in microns.
        w_access_um: f64,
    },
}

impl Cell {
    /// Short stable name used in error messages and cache-key tags.
    pub fn name(&self) -> &'static str {
        match self {
            Cell::Inverter => "inverter",
            Cell::Nand2 => "nand2",
            Cell::Nor2 => "nor2",
            Cell::InverterChain(_) => "chain",
            Cell::RingOsc(_) => "ringosc",
            Cell::SramCell { .. } => "sram",
        }
    }
}

/// Explicit load at the cell output, beyond the cell's own parasitics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Load {
    /// No explicit load.
    None,
    /// A grounded capacitor worth `f` inverter inputs of the spec's pair
    /// (fan-out-of-`f` termination).
    Fanout(f64),
    /// A grounded capacitor of fixed value, farads. For [`Cell::RingOsc`]
    /// this is the per-stage wiring capacitance.
    Farads(f64),
}

/// A sized, loaded cell instance — the unit the compiler wires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// The wiring pattern.
    pub cell: Cell,
    /// The complementary device pair populating every stage.
    pub pair: CmosPair,
    /// Output load.
    pub load: Load,
}

/// Static input vector for a [`Testbench::Leakage`] bench: the logic
/// level of each cell input (`true` = tied to `V_dd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputVector {
    /// One-input cells (inverter).
    One(bool),
    /// Two-input cells (NAND2/NOR2): `(a, b)`.
    Two(bool, bool),
}

impl InputVector {
    /// Wire-format name, e.g. `"01"`, used in tables and request params.
    pub fn name(&self) -> &'static str {
        match self {
            InputVector::One(false) => "0",
            InputVector::One(true) => "1",
            InputVector::Two(false, false) => "00",
            InputVector::Two(false, true) => "01",
            InputVector::Two(true, false) => "10",
            InputVector::Two(true, true) => "11",
        }
    }
}

/// Transient stimulus flavour for [`Testbench::Transient`]. Pulse timing
/// is derived from the pair's analytic FO1 delay at the bench supply, so
/// the window scales with the operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stimulus {
    /// One full 0→1→0 pulse through a chain; both propagation edges of
    /// the middle stage are measured ([`MeasurePlan::Edges`]).
    DelayPulse,
    /// The input starts high (output low) and falls once: the rising
    /// output edge draws the switching charge from the supply
    /// ([`MeasurePlan::SupplyEnergy`]).
    EnergyPulse,
}

/// How a compiled cell is excited and observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Testbench {
    /// DC transfer sweep of the primary input from 0 to `V_dd`.
    Vtc {
        /// Supply voltage.
        v_dd: Volts,
        /// Sweep sample count (min 2).
        points: usize,
        /// Wiring of the non-swept input of two-input cells; ignored by
        /// one-input cells.
        other: OtherInput,
    },
    /// Transient pulse response.
    Transient {
        /// Supply voltage.
        v_dd: Volts,
        /// Stimulus flavour.
        stimulus: Stimulus,
        /// Transient step count.
        steps: usize,
    },
    /// DC operating point with every input pinned to a static vector;
    /// the plan reads the supply's static current.
    Leakage {
        /// Supply voltage.
        v_dd: Volts,
        /// The pinned input vector.
        inputs: InputVector,
    },
    /// Free-running limit cycle ([`Cell::RingOsc`] only).
    Oscillation {
        /// Supply voltage.
        v_dd: Volts,
        /// Transient step count (min 500).
        steps: usize,
    },
}

impl Testbench {
    fn v_dd(&self) -> Volts {
        match self {
            Testbench::Vtc { v_dd, .. }
            | Testbench::Transient { v_dd, .. }
            | Testbench::Leakage { v_dd, .. }
            | Testbench::Oscillation { v_dd, .. } => *v_dd,
        }
    }
}

/// The measurement half of a compiled bench: what to solve and where to
/// probe. Every variant carries the full solve parameterization, so the
/// plan plus the netlist determine the result — that is the cache-key
/// contract [`CompiledBench::key`] encodes.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasurePlan {
    /// Sweep the named source from 0 to `v_stop` with `points` samples
    /// and record the voltage at `output`.
    DcTransfer {
        /// Name of the swept voltage source.
        source: &'static str,
        /// Sweep end value (the bench supply), volts.
        v_stop: f64,
        /// Sample count.
        points: usize,
        /// Node whose voltage forms the transfer curve.
        output: NodeId,
    },
    /// Run a transient to `t_stop` and read both propagation delays of
    /// the stage between `input` and `output` at the half-swing level.
    Edges {
        /// Transient window, seconds.
        t_stop: f64,
        /// Step count.
        steps: usize,
        /// Input node of the measured stage.
        input: NodeId,
        /// Output node of the measured stage.
        output: NodeId,
        /// Swing (the bench supply), volts.
        v_dd: f64,
    },
    /// Run a transient to `t_stop` and integrate the supply branch for
    /// delivered switching energy.
    SupplyEnergy {
        /// Transient window, seconds.
        t_stop: f64,
        /// Step count.
        steps: usize,
        /// The supply node.
        supply: NodeId,
        /// The supply's MNA branch index.
        branch: usize,
        /// Supply value, volts.
        v_dd: f64,
    },
    /// Solve the DC operating point and read the static current
    /// delivered by the supply branch.
    StaticCurrent {
        /// The supply's MNA branch index.
        branch: usize,
    },
    /// Run a transient from the initial state `x0` to `t_stop` and
    /// measure the limit-cycle period from rising crossings at `probe`.
    LimitCycle {
        /// Transient window, seconds.
        t_stop: f64,
        /// Step count.
        steps: usize,
        /// Node whose crossings define the period.
        probe: NodeId,
        /// Initial node voltages (asymmetric start, off the metastable
        /// DC point).
        x0: Vec<f64>,
        /// Supply (crossing level is `v_dd/2`), volts.
        v_dd: f64,
        /// Stage count (period → per-stage delay conversion).
        stages: usize,
    },
}

impl Keyed for MeasurePlan {
    fn absorb(&self, kb: KeyBuilder) -> KeyBuilder {
        match self {
            MeasurePlan::DcTransfer {
                source,
                v_stop,
                points,
                output,
            } => kb
                .str("dc")
                .str(source)
                .f64(*v_stop)
                .u64(*points as u64)
                .u64(*output as u64),
            MeasurePlan::Edges {
                t_stop,
                steps,
                input,
                output,
                v_dd,
            } => kb
                .str("edges")
                .f64(*t_stop)
                .u64(*steps as u64)
                .u64(*input as u64)
                .u64(*output as u64)
                .f64(*v_dd),
            MeasurePlan::SupplyEnergy {
                t_stop,
                steps,
                supply,
                branch,
                v_dd,
            } => kb
                .str("energy")
                .f64(*t_stop)
                .u64(*steps as u64)
                .u64(*supply as u64)
                .u64(*branch as u64)
                .f64(*v_dd),
            MeasurePlan::StaticCurrent { branch } => kb.str("static").u64(*branch as u64),
            MeasurePlan::LimitCycle {
                t_stop,
                steps,
                probe,
                x0,
                v_dd,
                stages,
            } => kb
                .str("osc")
                .f64(*t_stop)
                .u64(*steps as u64)
                .u64(*probe as u64)
                .f64s(x0)
                .f64(*v_dd)
                .u64(*stages as u64),
        }
    }
}

/// A cell/testbench combination the compiler cannot lower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedBench {
    /// The cell's [`Cell::name`].
    pub cell: &'static str,
    /// What was asked of it.
    pub bench: &'static str,
}

impl core::fmt::Display for UnsupportedBench {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cell `{}` has no `{}` testbench", self.cell, self.bench)
    }
}

impl std::error::Error for UnsupportedBench {}

/// A compiled bench: the deck plus its measurement plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledBench {
    /// The assembled netlist.
    pub net: Netlist,
    /// The solve-and-probe plan.
    pub plan: MeasurePlan,
}

impl CellSpec {
    /// An unloaded inverter spec.
    pub fn inverter(pair: CmosPair) -> Self {
        Self {
            cell: Cell::Inverter,
            pair,
            load: Load::None,
        }
    }

    /// An unloaded two-input gate spec.
    pub fn gate(kind: GateKind, pair: CmosPair) -> Self {
        Self {
            cell: match kind {
                GateKind::Nand2 => Cell::Nand2,
                GateKind::Nor2 => Cell::Nor2,
            },
            pair,
            load: Load::None,
        }
    }

    /// The explicit load in farads at the bench supply, if any.
    fn load_farads(&self, pair: &CmosPair) -> Option<f64> {
        match self.load {
            Load::None => None,
            Load::Fanout(f) => Some(f * pair.input_capacitance()),
            Load::Farads(c) => Some(c),
        }
    }

    /// Compiles this cell under the given testbench into a netlist and
    /// measurement plan. Compilation is deterministic: node creation
    /// order, element names and stimulus timing are fixed functions of
    /// the spec, so identical specs always produce identical decks.
    ///
    /// # Errors
    ///
    /// [`UnsupportedBench`] when the cell has no such bench (e.g.
    /// [`Testbench::Oscillation`] on an inverter) or the cell shape is
    /// invalid (even-stage ring, zero-stage chain).
    pub fn compile(&self, bench: &Testbench) -> Result<CompiledBench, UnsupportedBench> {
        let unsupported = |what: &'static str| UnsupportedBench {
            cell: self.cell.name(),
            bench: what,
        };
        let v_dd = bench.v_dd();
        let pair = self.pair.at_supply(v_dd);
        let vdd = v_dd.as_volts();
        match (self.cell, bench) {
            (Cell::Inverter, Testbench::Vtc { points, .. }) => {
                let inv = Inverter::new(pair);
                let mut net = Netlist::new();
                let vdd_node = net.node("vdd");
                let vin = net.node("in");
                let vout = net.node("out");
                net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd));
                net.vsource("VIN", vin, Netlist::GROUND, Waveform::Dc(0.0));
                inv.wire(&mut net, "X1", vin, vout, vdd_node);
                if let Some(c) = self.load_farads(&pair) {
                    net.capacitor("CL", vout, Netlist::GROUND, c);
                }
                Ok(CompiledBench {
                    net,
                    plan: MeasurePlan::DcTransfer {
                        source: "VIN",
                        v_stop: vdd,
                        points: (*points).max(2),
                        output: vout,
                    },
                })
            }
            (Cell::Nand2 | Cell::Nor2, Testbench::Vtc { points, other, .. }) => {
                let gate = Gate2 {
                    pair,
                    kind: self.gate_kind(),
                };
                let mut net = Netlist::new();
                let vdd_node = net.node("vdd");
                let a = net.node("a");
                let out = net.node("out");
                net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd));
                net.vsource("VA", a, Netlist::GROUND, Waveform::Dc(0.0));
                let b = match other {
                    OtherInput::Common => a,
                    OtherInput::High => vdd_node,
                    OtherInput::Low => Netlist::GROUND,
                };
                gate.wire(&mut net, "X1", a, b, out, vdd_node);
                if let Some(c) = self.load_farads(&pair) {
                    net.capacitor("CL", out, Netlist::GROUND, c);
                }
                Ok(CompiledBench {
                    net,
                    plan: MeasurePlan::DcTransfer {
                        source: "VA",
                        v_stop: vdd,
                        points: (*points).max(2),
                        output: out,
                    },
                })
            }
            (Cell::SramCell { w_access_um }, Testbench::Vtc { points, .. }) => {
                let inv = Inverter::new(pair);
                let mut net = Netlist::new();
                let vdd_node = net.node("vdd");
                let vin = net.node("in");
                let vout = net.node("out");
                let bitline = net.node("bl");
                net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd));
                net.vsource("VIN", vin, Netlist::GROUND, Waveform::Dc(0.0));
                net.vsource("VBL", bitline, Netlist::GROUND, Waveform::Dc(vdd));
                inv.wire(&mut net, "X1", vin, vout, vdd_node);
                // Access NFET: gate at the word-line (V_dd during read),
                // wired between the storage node and the precharged
                // bit-line.
                net.mosfet(
                    "MA",
                    pair.nfet_model(),
                    w_access_um,
                    bitline,
                    vdd_node,
                    vout,
                );
                Ok(CompiledBench {
                    net,
                    plan: MeasurePlan::DcTransfer {
                        source: "VIN",
                        v_stop: vdd,
                        points: (*points).max(2),
                        output: vout,
                    },
                })
            }
            (
                Cell::InverterChain(n),
                Testbench::Transient {
                    stimulus: Stimulus::DelayPulse,
                    steps,
                    ..
                },
            ) => {
                if n < 2 {
                    return Err(unsupported("delay transient (needs ≥ 2 stages)"));
                }
                let inv = Inverter::new(pair);
                let tp0 = analytic_fo1_delay(&pair, v_dd).get().max(1e-15);
                let mut net = Netlist::new();
                let vdd_node = net.node("vdd");
                // n stages need n+1 signal nodes; the historical 3-stage
                // deck names them a..d, longer chains continue s4, s5, …
                let names = ["a", "b", "c", "d"];
                let nodes: Vec<NodeId> = (0..=n)
                    .map(|i| match names.get(i) {
                        Some(nm) => net.node(nm),
                        None => net.node(&format!("s{i}")),
                    })
                    .collect();
                net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd));
                // One full pulse: rising edge then falling edge, both
                // measured.
                net.vsource(
                    "VIN",
                    nodes[0],
                    Netlist::GROUND,
                    Waveform::Pulse {
                        v0: 0.0,
                        v1: vdd,
                        delay: 4.0 * tp0,
                        rise: tp0,
                        fall: tp0,
                        width: 16.0 * tp0,
                        period: f64::INFINITY,
                    },
                );
                for i in 1..=n {
                    inv.wire(&mut net, &format!("X{i}"), nodes[i - 1], nodes[i], vdd_node);
                }
                if let Some(c) = self.load_farads(&pair) {
                    net.capacitor("CL", nodes[n], Netlist::GROUND, c);
                }
                // The measured stage is the middle one: its input has
                // been shaped by a real stage and its output still drives
                // a real stage.
                let mid = n / 2;
                Ok(CompiledBench {
                    net,
                    plan: MeasurePlan::Edges {
                        t_stop: 40.0 * tp0,
                        steps: (*steps).max(200),
                        input: nodes[mid],
                        output: nodes[mid + 1],
                        v_dd: vdd,
                    },
                })
            }
            (
                Cell::Inverter,
                Testbench::Transient {
                    stimulus: Stimulus::EnergyPulse,
                    steps,
                    ..
                },
            ) => {
                let tp0 = analytic_fo1_delay(&pair, v_dd).get().max(1e-15);
                let input = Waveform::Pulse {
                    v0: vdd,
                    v1: 0.0,
                    delay: 4.0 * tp0,
                    rise: tp0,
                    fall: tp0,
                    width: 40.0 * tp0,
                    period: f64::INFINITY,
                };
                let (net, vdd_node) = self.energy_deck(&pair, vdd, input);
                Ok(CompiledBench {
                    net,
                    plan: MeasurePlan::SupplyEnergy {
                        t_stop: 24.0 * tp0,
                        steps: (*steps).max(2),
                        supply: vdd_node,
                        branch: 0,
                        v_dd: vdd,
                    },
                })
            }
            (Cell::Inverter, Testbench::Leakage { inputs, .. }) => {
                let v_in = match inputs {
                    InputVector::One(high) => {
                        if *high {
                            vdd
                        } else {
                            0.0
                        }
                    }
                    InputVector::Two(..) => return Err(unsupported("two-input leakage vector")),
                };
                let (net, _) = self.energy_deck(&pair, vdd, Waveform::Dc(v_in));
                Ok(CompiledBench {
                    net,
                    plan: MeasurePlan::StaticCurrent { branch: 0 },
                })
            }
            (Cell::Nand2 | Cell::Nor2, Testbench::Leakage { inputs, .. }) => {
                let (va, vb) = match inputs {
                    InputVector::Two(a, b) => {
                        (if *a { vdd } else { 0.0 }, if *b { vdd } else { 0.0 })
                    }
                    InputVector::One(_) => return Err(unsupported("one-input leakage vector")),
                };
                let gate = Gate2 {
                    pair,
                    kind: self.gate_kind(),
                };
                let mut net = Netlist::new();
                let vdd_node = net.node("vdd");
                let a = net.node("a");
                let b = net.node("b");
                let out = net.node("out");
                net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd));
                net.vsource("VA", a, Netlist::GROUND, Waveform::Dc(va));
                net.vsource("VB", b, Netlist::GROUND, Waveform::Dc(vb));
                gate.wire(&mut net, "X1", a, b, out, vdd_node);
                Ok(CompiledBench {
                    net,
                    plan: MeasurePlan::StaticCurrent { branch: 0 },
                })
            }
            (Cell::RingOsc(n), Testbench::Oscillation { steps, .. }) => {
                if n < 3 || n % 2 == 0 {
                    return Err(unsupported("oscillation (needs an odd stage count ≥ 3)"));
                }
                let inv = Inverter::new(pair);
                let tp0 = analytic_fo1_delay(&pair, v_dd).get();
                let mut net = Netlist::new();
                let vdd_node = net.node("vdd");
                net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd));
                let nodes: Vec<NodeId> = (0..n).map(|i| net.node(&format!("n{i}"))).collect();
                let c_wire = self.load_farads(&pair).unwrap_or(0.0);
                for i in 0..n {
                    let input = nodes[i];
                    let output = nodes[(i + 1) % n];
                    inv.wire(&mut net, &format!("X{i}"), input, output, vdd_node);
                    // Explicit wiring capacitance keeps every node
                    // dynamic.
                    if c_wire > 0.0 {
                        net.capacitor(&format!("Cw{i}"), output, Netlist::GROUND, c_wire);
                    }
                }
                // A DC operating point would settle at the metastable
                // midpoint, so start from an asymmetric initial condition
                // instead: alternate rails around the loop (any
                // non-equilibrium start converges to the limit cycle).
                let mut x0 = vec![0.0; net.node_count()];
                x0[vdd_node] = vdd;
                for (i, &node) in nodes.iter().enumerate() {
                    x0[node] = if i % 2 == 0 { vdd } else { 0.0 };
                }
                Ok(CompiledBench {
                    net,
                    plan: MeasurePlan::LimitCycle {
                        t_stop: 8.0 * n as f64 * tp0,
                        steps: (*steps).max(500),
                        probe: nodes[0],
                        x0,
                        v_dd: vdd,
                        stages: n,
                    },
                })
            }
            (_, Testbench::Vtc { .. }) => Err(unsupported("vtc")),
            (_, Testbench::Transient { .. }) => Err(unsupported("transient")),
            (_, Testbench::Leakage { .. }) => Err(unsupported("leakage")),
            (_, Testbench::Oscillation { .. }) => Err(unsupported("oscillation")),
        }
    }

    fn gate_kind(&self) -> GateKind {
        match self.cell {
            Cell::Nand2 => GateKind::Nand2,
            Cell::Nor2 => GateKind::Nor2,
            _ => unreachable!("gate_kind on a non-gate cell"),
        }
    }

    /// The shared inverter energy/leakage deck: supply, driven input,
    /// one wired stage and the explicit load.
    fn energy_deck(&self, pair: &CmosPair, vdd: f64, input: Waveform) -> (Netlist, NodeId) {
        let inv = Inverter::new(*pair);
        let mut net = Netlist::new();
        let vdd_node = net.node("vdd");
        let vin = net.node("in");
        let vout = net.node("out");
        net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd));
        net.vsource("VIN", vin, Netlist::GROUND, input);
        inv.wire(&mut net, "X1", vin, vout, vdd_node);
        if let Some(c) = self.load_farads(pair) {
            net.capacitor("CL", vout, Netlist::GROUND, c);
        }
        (net, vdd_node)
    }
}

impl CompiledBench {
    /// The canonical cache key of this bench: a tag, the device-model
    /// identity, the netlist's full content stream and the plan's solve
    /// parameters. Any change to the deck, the devices behind it or the
    /// solve resolution changes the key.
    pub fn key(&self, tag: &str, model_id: &str) -> u64 {
        KeyBuilder::new(tag)
            .str(model_id)
            .keyed(&self.net)
            .keyed(&self.plan)
            .finish()
    }

    /// Runs a [`MeasurePlan::DcTransfer`] plan and assembles the
    /// transfer curve. Uncached and untraced — the raw engine legacy
    /// entry points call.
    ///
    /// # Errors
    ///
    /// Propagates [`SpiceError`] from the solver.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not a DC transfer.
    pub fn run_transfer(&self) -> Result<Vtc, SpiceError> {
        let MeasurePlan::DcTransfer {
            source,
            v_stop,
            points,
            output,
        } = &self.plan
        else {
            panic!("run_transfer on a non-transfer plan");
        };
        let sweep = linspace(0.0, *v_stop, *points);
        let sols = dc_sweep(&self.net, source, &sweep)?;
        Ok(Vtc {
            v_in: sweep,
            v_out: sols.iter().map(|s| s.node_voltages[*output]).collect(),
            v_dd: *v_stop,
        })
    }

    /// Solves the DC operating point of a [`MeasurePlan::StaticCurrent`]
    /// bench; the caller reads the branch current via the plan's branch
    /// index (so it can also observe iteration counts for tracing).
    ///
    /// # Errors
    ///
    /// Propagates [`SpiceError`] from the solver.
    pub fn run_operating_point(&self) -> Result<DcSolution, SpiceError> {
        dc_operating_point(&self.net)
    }

    /// Runs the transient of an [`MeasurePlan::Edges`],
    /// [`MeasurePlan::SupplyEnergy`] or [`MeasurePlan::LimitCycle`]
    /// plan (trapezoidal, with the plan's window and step count, from
    /// the plan's initial state when it has one).
    ///
    /// # Errors
    ///
    /// Propagates [`SpiceError`] from the solver.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no transient solve.
    pub fn run_transient(&self) -> Result<TransientResult, SpiceError> {
        match &self.plan {
            MeasurePlan::Edges { t_stop, steps, .. }
            | MeasurePlan::SupplyEnergy { t_stop, steps, .. } => {
                let spec = TransientSpec::with_steps(*t_stop, *steps, Integrator::Trapezoidal);
                transient(&self.net, spec)
            }
            MeasurePlan::LimitCycle {
                t_stop, steps, x0, ..
            } => {
                let spec = TransientSpec::with_steps(*t_stop, *steps, Integrator::Trapezoidal);
                let n_sources = self
                    .net
                    .elements()
                    .iter()
                    .filter(|e| matches!(e.element, Element::VSource { .. }))
                    .count();
                let x0 = DcSolution {
                    node_voltages: x0.clone(),
                    branch_currents: vec![0.0; n_sources],
                    iterations: 0,
                };
                transient_from(&self.net, spec, &x0)
            }
            _ => panic!("run_transient on a DC plan"),
        }
    }

    /// Reads both propagation delays of an [`MeasurePlan::Edges`] bench
    /// off its transient result. `None` when the half-swing crossings
    /// cannot be found.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not an edges plan.
    pub fn measure_edges(&self, res: &TransientResult) -> Option<crate::delay::Fo1Delay> {
        let MeasurePlan::Edges {
            input,
            output,
            v_dd,
            ..
        } = &self.plan
        else {
            panic!("measure_edges on a non-edges plan");
        };
        crate::delay::measure_fo1(res, *input, *output, *v_dd)
    }

    /// Extracts the limit-cycle period of a [`MeasurePlan::LimitCycle`]
    /// bench from its transient result: the spacing between the last two
    /// rising half-swing crossings at the probe (skipping the start-up
    /// transient). `None` when fewer than three crossings occurred.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not a limit-cycle plan.
    pub fn measure_oscillation(&self, res: &TransientResult) -> Option<RingOscillation> {
        let MeasurePlan::LimitCycle {
            probe,
            v_dd,
            stages,
            ..
        } = &self.plan
        else {
            panic!("measure_oscillation on a non-oscillation plan");
        };
        let mut crossings = Vec::new();
        let mut nth = 0;
        while let Some(t) = crossing_time(res, *probe, v_dd / 2.0, Edge::Rising, nth) {
            crossings.push(t);
            nth += 1;
            if nth > 256 {
                break;
            }
        }
        if crossings.len() < 3 {
            return None;
        }
        let k = crossings.len();
        let period = crossings[k - 1] - crossings[k - 2];
        Some(RingOscillation {
            period: Seconds::new(period),
            stage_delay: Seconds::new(period / (2.0 * *stages as f64)),
        })
    }
}

/// Degenerate measurement surfaced through the solver's error type (no
/// crossings, un-invertible curve) — the shape every legacy entry point
/// has always reported.
pub(crate) const MEASUREMENT_FAILED: SpiceError = SpiceError::NoConvergence {
    iterations: 0,
    residual: f64::NAN,
};

// ---------------------------------------------------------------------------
// Cached evaluators: the gate-library / ring / temperature workloads the
// extension experiments and the serve daemon share. Each compiles a bench,
// memoizes the solve in the engine cache under the canonical key, and
// traces solver effort like the spice circuit backend.
// ---------------------------------------------------------------------------

/// A gate transfer curve through the engine cache (`spice.vtc`
/// namespace).
///
/// # Errors
///
/// Propagates [`SpiceError`] from the solver.
pub fn cached_gate_vtc(
    pair: &CmosPair,
    kind: GateKind,
    v_dd: Volts,
    other: OtherInput,
    points: usize,
) -> Result<Vtc, SpiceError> {
    let spec = CellSpec::gate(kind, *pair);
    let bench = spec
        .compile(&Testbench::Vtc {
            v_dd,
            points,
            other,
        })
        .expect("gate cells always compile a VTC bench");
    let key = bench.key("topo.vtc", &pair.model().cache_id());
    let v_out =
        global_cache().try_get_or_compute::<Vec<f64>, SpiceError>(TOPO_VTC_NS, key, || {
            let vtc = bench.run_transfer()?;
            trace::add("spice.dc.solves", vtc.v_in.len() as u64);
            Ok(vtc.v_out)
        })?;
    Ok(Vtc {
        v_in: linspace(0.0, v_dd.as_volts(), points.max(2)),
        v_out,
        v_dd: v_dd.as_volts(),
    })
}

/// Worst-case gate static noise margin over the standard input vectors,
/// via cached transfer curves.
///
/// # Errors
///
/// Propagates [`SpiceError`]; a gate with no restoring region reports as
/// a non-convergence.
pub fn cached_gate_snm(
    pair: &CmosPair,
    kind: GateKind,
    v_dd: Volts,
    points: usize,
) -> Result<f64, SpiceError> {
    let others = match kind {
        GateKind::Nand2 => [OtherInput::High, OtherInput::Common],
        GateKind::Nor2 => [OtherInput::Low, OtherInput::Common],
    };
    let mut worst = f64::INFINITY;
    for other in others {
        let vtc = cached_gate_vtc(pair, kind, v_dd, other, points)?;
        if let Some(nm) = crate::snm::noise_margins(&vtc) {
            worst = worst.min(nm.snm());
        }
    }
    if worst.is_finite() {
        Ok(worst)
    } else {
        Err(MEASUREMENT_FAILED)
    }
}

/// Static leakage current of a gate at one input vector (amps delivered
/// by the supply), through the engine cache (`spice.vtc` namespace — a
/// DC record).
///
/// # Errors
///
/// Propagates [`SpiceError`] from the solver.
pub fn cached_gate_leakage(
    pair: &CmosPair,
    kind: GateKind,
    v_dd: Volts,
    inputs: (bool, bool),
) -> Result<f64, SpiceError> {
    let spec = CellSpec::gate(kind, *pair);
    let bench = spec
        .compile(&Testbench::Leakage {
            v_dd,
            inputs: InputVector::Two(inputs.0, inputs.1),
        })
        .expect("gate cells always compile a leakage bench");
    let key = bench.key("topo.leak", &pair.model().cache_id());
    let rec =
        global_cache().try_get_or_compute::<Vec<f64>, SpiceError>(TOPO_VTC_NS, key, || {
            let sol = bench.run_operating_point()?;
            trace::add("spice.dc.solves", 1);
            trace::observe("spice.newton.iterations", sol.iterations as f64);
            let MeasurePlan::StaticCurrent { branch } = bench.plan else {
                unreachable!("leakage benches carry a static-current plan");
            };
            // Delivered current is −i_branch on the supply source.
            Ok(vec![-sol.branch_currents[branch]])
        })?;
    rec.first().copied().ok_or(MEASUREMENT_FAILED)
}

/// Ring-oscillator period and per-stage delay through the engine cache
/// (`spice.tran` namespace).
///
/// # Errors
///
/// Propagates [`SpiceError`]; no detectable oscillation reports as a
/// non-convergence.
///
/// # Panics
///
/// Panics if `stages` is even or less than 3 (the legacy
/// [`crate::ring::ring_oscillator`] contract).
pub fn cached_ring_oscillation(
    pair: &CmosPair,
    v_dd: Volts,
    stages: usize,
    steps: usize,
) -> Result<RingOscillation, SpiceError> {
    assert!(
        stages >= 3 && stages % 2 == 1,
        "ring needs an odd stage count >= 3"
    );
    let spec = CellSpec {
        cell: Cell::RingOsc(stages),
        pair: *pair,
        load: Load::Farads(0.1e-15),
    };
    let bench = spec
        .compile(&Testbench::Oscillation { v_dd, steps })
        .expect("odd rings always compile an oscillation bench");
    let key = bench.key("topo.ring", &pair.model().cache_id());
    let rec =
        global_cache().try_get_or_compute::<Vec<f64>, SpiceError>(TOPO_TRAN_NS, key, || {
            let res = bench.run_transient()?;
            trace::add("spice.tran.runs", 1);
            trace::observe("spice.tran.steps", res.newton_iterations.len() as f64);
            let osc = bench.measure_oscillation(&res).ok_or(MEASUREMENT_FAILED)?;
            Ok(vec![osc.period.get(), osc.stage_delay.get()])
        })?;
    match rec.as_slice() {
        [period, stage_delay] => Ok(RingOscillation {
            period: Seconds::new(*period),
            stage_delay: Seconds::new(*stage_delay),
        }),
        _ => Err(MEASUREMENT_FAILED),
    }
}

/// Inverter transfer curve through the engine cache — the temperature
/// workload's VTC path (`spice.vtc` namespace). Identical deck to the
/// spice circuit backend's VTC, but keyed through the canonical
/// topology key (the pair's temperature enters via the device models).
///
/// # Errors
///
/// Propagates [`SpiceError`] from the solver.
pub fn cached_inverter_vtc(pair: &CmosPair, v_dd: Volts, points: usize) -> Result<Vtc, SpiceError> {
    let spec = CellSpec::inverter(*pair);
    let bench = spec
        .compile(&Testbench::Vtc {
            v_dd,
            points,
            other: OtherInput::Low,
        })
        .expect("inverters always compile a VTC bench");
    let key = bench.key("topo.vtc", &pair.model().cache_id());
    let v_out =
        global_cache().try_get_or_compute::<Vec<f64>, SpiceError>(TOPO_VTC_NS, key, || {
            let vtc = bench.run_transfer()?;
            trace::add("spice.dc.solves", vtc.v_in.len() as u64);
            Ok(vtc.v_out)
        })?;
    Ok(Vtc {
        v_in: linspace(0.0, v_dd.as_volts(), points.max(2)),
        v_out,
        v_dd: v_dd.as_volts(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_physics::device::DeviceParams;

    fn pair() -> CmosPair {
        CmosPair::balanced(DeviceParams::reference_90nm_nfet())
    }

    #[test]
    fn inverter_vtc_bench_matches_legacy_deck() {
        let p = pair();
        let v = Volts::new(0.25);
        let (net, vout) = Inverter::new(p).vtc_netlist(v);
        let bench = CellSpec::inverter(p)
            .compile(&Testbench::Vtc {
                v_dd: v,
                points: 41,
                other: OtherInput::Low,
            })
            .unwrap();
        assert_eq!(bench.net, net, "compiled deck must equal the legacy deck");
        match bench.plan {
            MeasurePlan::DcTransfer { output, source, .. } => {
                assert_eq!(output, vout);
                assert_eq!(source, "VIN");
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn compilation_is_deterministic() {
        let p = pair();
        let bench = |points| {
            CellSpec::gate(GateKind::Nand2, p)
                .compile(&Testbench::Vtc {
                    v_dd: Volts::new(0.25),
                    points,
                    other: OtherInput::Common,
                })
                .unwrap()
        };
        let a = bench(61);
        let b = bench(61);
        assert_eq!(a, b);
        assert_eq!(a.key("t", "analytic"), b.key("t", "analytic"));
        let c = bench(81);
        assert_ne!(
            a.key("t", "analytic"),
            c.key("t", "analytic"),
            "plan resolution must enter the key"
        );
        assert_ne!(
            a.key("t", "analytic"),
            a.key("t", "tcad"),
            "model identity must enter the key"
        );
    }

    #[test]
    fn unsupported_benches_are_typed_errors() {
        let p = pair();
        let err = CellSpec::inverter(p)
            .compile(&Testbench::Oscillation {
                v_dd: Volts::new(0.25),
                steps: 500,
            })
            .unwrap_err();
        assert_eq!(err.cell, "inverter");
        let err = CellSpec {
            cell: Cell::RingOsc(4),
            pair: p,
            load: Load::None,
        }
        .compile(&Testbench::Oscillation {
            v_dd: Volts::new(0.25),
            steps: 500,
        })
        .unwrap_err();
        assert!(err.to_string().contains("odd stage count"));
    }

    #[test]
    fn gate_leakage_shows_the_stack_effect() {
        // NAND with both inputs low leaks through a two-high off NFET
        // stack; a single off device (01) leaks more.
        let p = pair();
        let v = Volts::new(0.25);
        let both_off = cached_gate_leakage(&p, GateKind::Nand2, v, (false, false)).unwrap();
        let single = cached_gate_leakage(&p, GateKind::Nand2, v, (false, true)).unwrap();
        assert!(both_off > 0.0, "leakage must be positive: {both_off}");
        assert!(
            single > 1.5 * both_off,
            "stack effect: single-off {single} vs stack {both_off}"
        );
    }

    #[test]
    fn cached_gate_snm_matches_uncached() {
        let p = pair();
        let v = Volts::new(0.25);
        let cached = cached_gate_snm(&p, GateKind::Nor2, v, 61).unwrap();
        let direct = Gate2::nor2(p).worst_case_snm(v, 61).unwrap();
        assert_eq!(cached, direct, "cached and direct SNM must agree exactly");
        let again = cached_gate_snm(&p, GateKind::Nor2, v, 61).unwrap();
        assert_eq!(cached, again);
    }
}
