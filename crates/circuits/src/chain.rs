//! Inverter-chain energy and the minimum-energy point (`V_min`).
//!
//! The paper's Fig. 6/Fig. 12 experiment: a chain of 30 inverters with
//! activity factor α = 0.1, swept over supply voltage. Per cycle:
//!
//! * dynamic energy `E_dyn = α·Σ C_L·V_dd²` (paper Eq. 7a), and
//! * leakage energy `E_leak = I_leak·V_dd·T_cycle` with
//!   `T_cycle = N·t_p(V_dd)` — the chain is re-clocked at its own
//!   propagation depth, the standard minimum-energy-point formulation
//!   (paper Eq. 7b, refs \[17\]\[18\]).
//!
//! As `V_dd` falls, `E_dyn` shrinks quadratically while `t_p` (and so
//! `E_leak`) grows exponentially; the crossover sets `V_min`.

use subvt_engine::trace;
use subvt_physics::math::golden_section;
use subvt_units::{Joules, Seconds, Volts};

use crate::delay::analytic_fo1_delay;
use crate::inverter::CmosPair;

/// An inverter chain clocked at its own logic depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverterChain {
    /// The unit inverter.
    pub pair: CmosPair,
    /// Number of stages (the paper uses 30).
    pub stages: usize,
    /// Switching activity factor (the paper uses 0.1).
    pub activity: f64,
}

/// Energy breakdown of one cycle at one supply point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyPoint {
    /// Supply voltage.
    pub v_dd: Volts,
    /// Dynamic energy per cycle.
    pub dynamic: Joules,
    /// Leakage energy per cycle.
    pub leakage: Joules,
    /// Cycle time `N·t_p`.
    pub t_cycle: Seconds,
}

impl EnergyPoint {
    /// Total energy per cycle.
    pub fn total(&self) -> Joules {
        self.dynamic + self.leakage
    }
}

/// The minimum-energy operating point of a chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinimumEnergyPoint {
    /// Energy-optimal supply `V_min`.
    pub v_min: Volts,
    /// Energy per cycle at `V_min`.
    pub energy: Joules,
    /// The full breakdown at `V_min`.
    pub point: EnergyPoint,
}

impl InverterChain {
    /// The paper's experiment: 30 stages at α = 0.1.
    pub fn paper_chain(pair: CmosPair) -> Self {
        Self {
            pair,
            stages: 30,
            activity: 0.1,
        }
    }

    /// Creates a chain.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero or `activity` is outside `(0, 1]`.
    pub fn new(pair: CmosPair, stages: usize, activity: f64) -> Self {
        assert!(stages > 0, "chain needs at least one stage");
        assert!(
            activity > 0.0 && activity <= 1.0,
            "activity factor must be in (0, 1]"
        );
        Self {
            pair,
            stages,
            activity,
        }
    }

    /// Evaluates the energy breakdown at one supply.
    pub fn energy_at(&self, v_dd: Volts) -> EnergyPoint {
        let pair = self.pair.at_supply(v_dd);
        let n = self.stages as f64;
        let c_stage = pair.input_capacitance() + pair.output_capacitance();
        let v = v_dd.as_volts();

        let tp = analytic_fo1_delay(&pair, v_dd);
        let t_cycle = Seconds::new(n * tp.get());

        let dynamic = Joules::new(self.activity * n * c_stage * v * v);
        let i_leak = n * pair.leakage_current();
        let leakage = Joules::new(i_leak * v * t_cycle.get());
        EnergyPoint {
            v_dd,
            dynamic,
            leakage,
            t_cycle,
        }
    }

    /// Sweeps the supply over `[lo, hi]` with `points` samples.
    pub fn energy_sweep(&self, lo: Volts, hi: Volts, points: usize) -> Vec<EnergyPoint> {
        let _span = trace::span("circuits.chain.energy_sweep")
            .attr("points", points.max(2))
            .attr("stages", self.stages);
        let out: Vec<EnergyPoint> =
            subvt_physics::math::linspace(lo.as_volts(), hi.as_volts(), points.max(2))
                .into_iter()
                .map(|v| self.energy_at(Volts::new(v)))
                .collect();
        trace::add("circuits.chain.energy_points", out.len() as u64);
        out
    }

    /// Finds the minimum-energy point by golden-section search over
    /// `V_dd ∈ [0.08 V, 0.7 V]`.
    pub fn minimum_energy_point(&self) -> MinimumEnergyPoint {
        let _span = trace::span("circuits.chain.minimum_energy_point").attr("stages", self.stages);
        let probes = std::cell::Cell::new(0u64);
        let min = golden_section(
            |v| {
                probes.set(probes.get() + 1);
                self.energy_at(Volts::new(v)).total().get()
            },
            0.08,
            0.7,
            1e-5,
            200,
        );
        trace::add("circuits.chain.energy_points", probes.get());
        let v_min = Volts::new(min.x);
        let point = self.energy_at(v_min);
        MinimumEnergyPoint {
            v_min,
            energy: point.total(),
            point,
        }
    }

    /// The paper's `K_Vmin = V_min / S_S` structural constant (§2.3.3,
    /// after refs \[17\]\[18\]): depends on the circuit topology and
    /// activity, not on device scaling parameters.
    pub fn k_vmin(&self) -> f64 {
        let mep = self.minimum_energy_point();
        let s_s = self.pair.nfet_chars().s_s.as_volts_per_decade();
        mep.v_min.as_volts() / s_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_physics::device::DeviceParams;

    fn chain() -> InverterChain {
        InverterChain::paper_chain(CmosPair::balanced(DeviceParams::reference_90nm_nfet()))
    }

    #[test]
    fn vmin_in_subthreshold_window() {
        let mep = chain().minimum_energy_point();
        // Published minimum-energy points for small logic chains sit
        // between ~150 mV and ~400 mV.
        let v = mep.v_min.as_volts();
        assert!((0.12..0.45).contains(&v), "V_min = {v}");
    }

    #[test]
    fn energy_curve_is_convex_near_minimum() {
        let c = chain();
        let mep = c.minimum_energy_point();
        let v = mep.v_min.as_volts();
        let e = |vv: f64| c.energy_at(Volts::new(vv)).total().get();
        assert!(e(v - 0.05) > e(v));
        assert!(e(v + 0.05) > e(v));
    }

    #[test]
    fn leakage_dominates_below_vmin_dynamic_above() {
        let c = chain();
        let mep = c.minimum_energy_point();
        let below = c.energy_at(Volts::new(mep.v_min.as_volts() - 0.08));
        let above = c.energy_at(Volts::new(mep.v_min.as_volts() + 0.15));
        assert!(
            below.leakage.get() / below.dynamic.get() > above.leakage.get() / above.dynamic.get()
        );
    }

    #[test]
    fn energy_scale_is_femtojoules() {
        // 30 stages × ~4 fF × (0.3 V)² × 0.1 ≈ 1 fJ class.
        let mep = chain().minimum_energy_point();
        let fj = mep.energy.as_femtojoules();
        assert!(fj > 0.05 && fj < 100.0, "E_min = {fj} fJ");
    }

    #[test]
    fn higher_activity_raises_vmin() {
        // More switching → dynamic energy dominates → optimal V_dd drops…
        // actually: higher α raises E_dyn relative to E_leak, pushing
        // V_min *down*. Verify the direction.
        let p = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
        let lazy = InverterChain::new(p, 30, 0.02).minimum_energy_point();
        let busy = InverterChain::new(p, 30, 0.5).minimum_energy_point();
        assert!(
            busy.v_min.as_volts() < lazy.v_min.as_volts(),
            "busy {} < lazy {}",
            busy.v_min.as_volts(),
            lazy.v_min.as_volts()
        );
    }

    #[test]
    fn longer_chain_scales_energy_linearly() {
        let p = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
        let short = InverterChain::new(p, 10, 0.1);
        let long = InverterChain::new(p, 40, 0.1);
        let v = Volts::new(0.3);
        let ratio = long.energy_at(v).dynamic.get() / short.energy_at(v).dynamic.get();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn k_vmin_is_order_unity() {
        // V_min ≈ a few S_S decades: K_Vmin typically 2–5 for small
        // chains.
        let k = chain().k_vmin();
        assert!(k > 1.0 && k < 6.0, "K_Vmin = {k}");
    }

    #[test]
    #[should_panic(expected = "activity factor")]
    fn rejects_zero_activity() {
        let p = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
        let _ = InverterChain::new(p, 30, 0.0);
    }
}
