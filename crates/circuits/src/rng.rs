//! Deterministic pseudo-random sampling for Monte-Carlo sweeps.
//!
//! The generator itself now lives in `subvt_engine::rng` so the
//! engine's fault-injection harness can share the same deterministic
//! streams; this module re-exports it for the existing circuit-level
//! call sites ([`crate::montecarlo`] and downstream users).

pub use subvt_engine::rng::SplitMix64;
