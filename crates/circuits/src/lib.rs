//! Gate- and circuit-level analyses for subthreshold CMOS.
//!
//! Built on the `subvt-spice` simulator and the `subvt-physics` compact
//! model, this crate provides every circuit experiment the paper runs:
//! inverter voltage-transfer curves ([`inverter`]), gain = −1 and
//! butterfly static noise margins ([`snm`]), FO1 propagation delay
//! ([`delay`]), inverter-chain energy and the minimum-energy point
//! ([`chain`]) — plus extensions: ring oscillators ([`ring`]), 6T SRAM
//! read/hold margins ([`sram`]) and Monte-Carlo V_th variability
//! ([`montecarlo`]).
//!
//! # Example: SNM of the reference inverter at 250 mV
//!
//! ```
//! use subvt_circuits::inverter::{CmosPair, Inverter};
//! use subvt_circuits::snm::noise_margins;
//! use subvt_physics::DeviceParams;
//! use subvt_units::Volts;
//!
//! let pair = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
//! let vtc = Inverter::new(pair).vtc(Volts::new(0.25), 101)?;
//! let nm = noise_margins(&vtc).expect("restoring inverter");
//! assert!(nm.snm() > 0.03);
//! # Ok::<(), subvt_spice::SpiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod chain;
pub mod delay;
pub mod gates;
pub mod inverter;
pub mod montecarlo;
pub mod ring;
pub mod rng;
pub mod snm;
pub mod sram;
pub mod topology;

pub use backend::{
    analytic_circuit, spice_circuit, CircuitBackend, CircuitBackendKind, CircuitError,
};
pub use chain::{InverterChain, MinimumEnergyPoint};
pub use inverter::{CmosPair, Inverter, Vtc};
pub use snm::{butterfly_snm, noise_margins, snm_sample, NoiseMargins};
