//! Circuit-level backend seam: analytic-vs-SPICE circuit metrics.
//!
//! Mirrors the device-layer [`subvt_model::DeviceModel`] seam one level
//! up: a [`CircuitBackend`] abstracts the four circuit metrics the
//! paper's figures are built from — VTC, FO1 propagation delay,
//! inverter-chain energy and the minimum-energy point — so experiments
//! can swap the compact fast path for full `subvt-spice` netlist
//! simulation without touching experiment code.
//!
//! * [`analytic_circuit`] — the compact fast path the figures have always
//!   used: an MNA DC sweep for the VTC, a lumped three-stage transient
//!   for FO1 delay, and the closed-form Eq. 7 chain-energy model.
//!   Uncached and untraced, so routing through it is byte-identical to
//!   calling the underlying functions directly.
//! * [`spice_circuit`] — every metric measured off a netlist: the VTC
//!   from the same deck at DC, delay from a finer transient, and chain
//!   energy from *measured* per-stage switching energy (supply-current
//!   integration) plus *measured* DC leakage. Results are memoized in
//!   the engine cache under the `spice.vtc` / `spice.tran` namespaces
//!   (keys cover the device backend's `cache_id` and a full netlist
//!   content hash) and instrumented with trace spans plus Newton- and
//!   transient-step histograms, like the TCAD device path.

use std::cell::{Cell as StdCell, RefCell};
use std::fmt;
use std::str::FromStr;

use subvt_engine::{global_cache, trace};
use subvt_physics::math::{golden_section, linspace};
use subvt_spice::measure::supply_energy;
use subvt_spice::mna::{dc_sweep, SpiceError};
use subvt_units::{Joules, Seconds, Volts};

use crate::chain::{EnergyPoint, InverterChain, MinimumEnergyPoint};
use crate::delay::{fo1_bench, spice_fo1_delay, Fo1Delay};
use crate::gates::OtherInput;
use crate::inverter::{CmosPair, Inverter, Vtc};
use crate::montecarlo::{self, DelayStatistics, SnmStatistics};
use crate::topology::{CellSpec, InputVector, Load, MeasurePlan, Stimulus, Testbench};

/// Transient resolution of the analytic backend's FO1 measurement — the
/// step count `figs_circuit` has always used, kept here so routing the
/// figure through the seam stays byte-identical.
pub const FO1_TRANSIENT_STEPS: usize = 900;

/// Transient resolution of the spice backend's FO1 measurement (finer
/// than the fast path; the parity suite bounds the difference).
const SPICE_FO1_STEPS: usize = 1200;

/// Transient resolution of the spice backend's switching-energy
/// integration.
const SPICE_ENERGY_STEPS: usize = 800;

/// Cache namespace for spice-backend VTC curves.
const SPICE_VTC_NS: &str = "spice.vtc";

/// Cache namespace for spice-backend transient-derived records.
const SPICE_TRAN_NS: &str = "spice.tran";

/// Error type of circuit-backend evaluations.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The underlying solver failed.
    Spice(SpiceError),
    /// A waveform measurement on a successful simulation failed.
    Measurement(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::Spice(e) => write!(f, "spice solve failed: {e}"),
            CircuitError::Measurement(what) => write!(f, "measurement failed: {what}"),
        }
    }
}

impl std::error::Error for CircuitError {}

impl From<SpiceError> for CircuitError {
    fn from(e: SpiceError) -> Self {
        CircuitError::Spice(e)
    }
}

/// Selectable circuit backend, the `--circuit-backend` CLI surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CircuitBackendKind {
    /// Compact fast path (default).
    #[default]
    Analytic,
    /// Full netlist simulation with caching and instrumentation.
    Spice,
}

impl CircuitBackendKind {
    /// Every selectable circuit backend.
    pub const ALL: [CircuitBackendKind; 2] =
        [CircuitBackendKind::Analytic, CircuitBackendKind::Spice];

    /// The CLI spelling of this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            CircuitBackendKind::Analytic => "analytic",
            CircuitBackendKind::Spice => "spice",
        }
    }

    /// The backend instance this kind selects.
    pub fn instance(self) -> &'static dyn CircuitBackend {
        match self {
            CircuitBackendKind::Analytic => analytic_circuit(),
            CircuitBackendKind::Spice => spice_circuit(),
        }
    }
}

impl fmt::Display for CircuitBackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CircuitBackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "analytic" => Ok(CircuitBackendKind::Analytic),
            "spice" => Ok(CircuitBackendKind::Spice),
            other => Err(format!(
                "unknown circuit backend '{other}' (expected 'analytic' or 'spice')"
            )),
        }
    }
}

/// A circuit-metric evaluation engine.
///
/// Implementations must be deterministic for identical inputs: cache
/// keys and the byte-identity guarantee of the analytic path both rely
/// on it.
pub trait CircuitBackend: Send + Sync + fmt::Debug {
    /// Short stable name ("analytic", "spice").
    fn name(&self) -> &'static str;

    /// Identifier recorded in run manifests; defaults to [`Self::name`].
    fn cache_id(&self) -> String {
        self.name().to_owned()
    }

    /// Voltage-transfer characteristic of the pair's inverter at `v_dd`,
    /// sampled at `points` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] when the solve or a measurement fails.
    fn vtc(&self, pair: &CmosPair, v_dd: Volts, points: usize) -> Result<Vtc, CircuitError>;

    /// FO1 propagation delay of the pair's inverter at `v_dd`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] when the solve or a measurement fails.
    fn fo1_delay(&self, pair: &CmosPair, v_dd: Volts) -> Result<Fo1Delay, CircuitError>;

    /// Per-cycle energy breakdown of an inverter chain at one supply.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] when the solve or a measurement fails.
    fn chain_energy(&self, chain: &InverterChain, v_dd: Volts)
        -> Result<EnergyPoint, CircuitError>;

    /// Minimum-energy operating point of an inverter chain.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] when the solve or a measurement fails.
    fn minimum_energy_point(
        &self,
        chain: &InverterChain,
    ) -> Result<MinimumEnergyPoint, CircuitError>;

    /// Monte-Carlo FO1 delay variability under Pelgrom `V_th` mismatch,
    /// plus per-sample wall-clock milliseconds (empty when the backend
    /// does not time samples). Wall times are machine-dependent and must
    /// only feed bench artifacts, never deterministic output.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] when the nominal solve fails.
    fn delay_variability(
        &self,
        pair: &CmosPair,
        v_dd: Volts,
        samples: usize,
        seed: u64,
    ) -> Result<(DelayStatistics, Vec<f64>), CircuitError>;

    /// Monte-Carlo inverter SNM variability under Pelgrom `V_th`
    /// mismatch, plus per-sample wall-clock milliseconds (empty when the
    /// backend does not time samples).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] when the solve fails outright (per-sample
    /// failures are folded into `failure_fraction` instead).
    fn snm_variability(
        &self,
        pair: &CmosPair,
        v_dd: Volts,
        samples: usize,
        seed: u64,
    ) -> Result<(SnmStatistics, Vec<f64>), CircuitError>;
}

/// The compact fast path — exactly the calls the figures made before the
/// seam existed.
#[derive(Debug)]
pub struct AnalyticCircuit;

/// The fully netlist-driven path: cached, instrumented, measured.
#[derive(Debug)]
pub struct SpiceCircuit;

static ANALYTIC: AnalyticCircuit = AnalyticCircuit;
static SPICE: SpiceCircuit = SpiceCircuit;

/// The process-wide analytic circuit backend.
pub fn analytic_circuit() -> &'static dyn CircuitBackend {
    &ANALYTIC
}

/// The process-wide spice circuit backend.
pub fn spice_circuit() -> &'static dyn CircuitBackend {
    &SPICE
}

impl CircuitBackend for AnalyticCircuit {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn vtc(&self, pair: &CmosPair, v_dd: Volts, points: usize) -> Result<Vtc, CircuitError> {
        Ok(Inverter::new(*pair).vtc(v_dd, points)?)
    }

    fn fo1_delay(&self, pair: &CmosPair, v_dd: Volts) -> Result<Fo1Delay, CircuitError> {
        Ok(spice_fo1_delay(pair, v_dd, FO1_TRANSIENT_STEPS)?)
    }

    fn chain_energy(
        &self,
        chain: &InverterChain,
        v_dd: Volts,
    ) -> Result<EnergyPoint, CircuitError> {
        Ok(chain.energy_at(v_dd))
    }

    fn minimum_energy_point(
        &self,
        chain: &InverterChain,
    ) -> Result<MinimumEnergyPoint, CircuitError> {
        Ok(chain.minimum_energy_point())
    }

    fn delay_variability(
        &self,
        pair: &CmosPair,
        v_dd: Volts,
        samples: usize,
        seed: u64,
    ) -> Result<(DelayStatistics, Vec<f64>), CircuitError> {
        Ok((
            montecarlo::delay_variability(pair, v_dd, samples, seed),
            Vec::new(),
        ))
    }

    fn snm_variability(
        &self,
        pair: &CmosPair,
        v_dd: Volts,
        samples: usize,
        seed: u64,
    ) -> Result<(SnmStatistics, Vec<f64>), CircuitError> {
        Ok((
            montecarlo::snm_variability(pair, v_dd, samples, seed),
            Vec::new(),
        ))
    }
}

impl SpiceCircuit {
    /// Measured per-stage switching energy (joules per output transition,
    /// by supply-current integration over a falling-input pulse) and DC
    /// leakage current (amps, the two static input states averaged) of an
    /// FO1-terminated inverter. Cached under `spice.tran`.
    fn stage_metrics(&self, pair: &CmosPair, v_dd: Volts) -> Result<[f64; 2], CircuitError> {
        let spec = CellSpec {
            cell: crate::topology::Cell::Inverter,
            pair: *pair,
            load: Load::Fanout(1.0),
        };
        let vdd = v_dd.as_volts();
        // Input starts high (output low) and falls once: the rising
        // output edge draws the switching charge from the supply.
        let bench = spec
            .compile(&Testbench::Transient {
                v_dd,
                stimulus: Stimulus::EnergyPulse,
                steps: SPICE_ENERGY_STEPS,
            })
            .expect("inverters always compile an energy bench");
        let MeasurePlan::SupplyEnergy {
            t_stop,
            supply: vdd_node,
            ..
        } = bench.plan
        else {
            unreachable!("energy benches carry a supply-energy plan");
        };
        let key = bench.key("stage", &pair.model().cache_id());
        let rec = global_cache().try_get_or_compute::<Vec<f64>, CircuitError>(
            SPICE_TRAN_NS,
            key,
            || {
                // DC leakage: mean supply draw over the two input states.
                let mut i_leak = 0.0;
                for high in [false, true] {
                    let dc_bench = spec
                        .compile(&Testbench::Leakage {
                            v_dd,
                            inputs: InputVector::One(high),
                        })
                        .expect("inverters always compile a leakage bench");
                    let sol = dc_bench.run_operating_point()?;
                    trace::add("spice.dc.solves", 1);
                    trace::observe("spice.newton.iterations", sol.iterations as f64);
                    // Branch 0 is VDD; delivered current is −i_branch.
                    i_leak += 0.5 * -sol.branch_currents[0];
                }

                let res = bench.run_transient()?;
                trace::add("spice.tran.runs", 1);
                trace::observe("spice.tran.steps", res.newton_iterations.len() as f64);
                for &iters in &res.newton_iterations {
                    trace::observe("spice.newton.iterations", iters as f64);
                }
                // Switching energy: total delivered energy minus the
                // leakage floor over the integration window.
                let e_total = supply_energy(&res, 0, vdd_node);
                let e_sw = (e_total - i_leak * vdd * t_stop).max(0.0);
                Ok(vec![e_sw, i_leak])
            },
        )?;
        match rec.as_slice() {
            [e_sw, i_leak] => Ok([*e_sw, *i_leak]),
            _ => Err(CircuitError::Measurement(
                "malformed spice.tran stage record".to_owned(),
            )),
        }
    }
}

impl CircuitBackend for SpiceCircuit {
    fn name(&self) -> &'static str {
        "spice"
    }

    fn vtc(&self, pair: &CmosPair, v_dd: Volts, points: usize) -> Result<Vtc, CircuitError> {
        let points = points.max(2);
        let _span = trace::span("spice.backend.vtc")
            .attr("points", points)
            .attr("v_dd", v_dd.as_volts());
        let bench = CellSpec::inverter(*pair)
            .compile(&Testbench::Vtc {
                v_dd,
                points,
                other: OtherInput::Low,
            })
            .expect("inverters always compile a VTC bench");
        let MeasurePlan::DcTransfer { source, output, .. } = bench.plan else {
            unreachable!("VTC benches carry a transfer plan");
        };
        let sweep = linspace(0.0, v_dd.as_volts(), points);
        let key = bench.key("vtc", &pair.model().cache_id());
        let v_out = global_cache().try_get_or_compute::<Vec<f64>, CircuitError>(
            SPICE_VTC_NS,
            key,
            || {
                let sols = dc_sweep(&bench.net, source, &sweep)?;
                trace::add("spice.dc.solves", sols.len() as u64);
                for s in &sols {
                    trace::observe("spice.newton.iterations", s.iterations as f64);
                }
                Ok(sols.iter().map(|s| s.node_voltages[output]).collect())
            },
        )?;
        Ok(Vtc {
            v_in: sweep,
            v_out,
            v_dd: v_dd.as_volts(),
        })
    }

    fn fo1_delay(&self, pair: &CmosPair, v_dd: Volts) -> Result<Fo1Delay, CircuitError> {
        let _span = trace::span("spice.backend.fo1").attr("v_dd", v_dd.as_volts());
        let bench = fo1_bench(pair, v_dd, SPICE_FO1_STEPS);
        let key = bench.key("fo1", &pair.model().cache_id());
        let rec = global_cache().try_get_or_compute::<Vec<f64>, CircuitError>(
            SPICE_TRAN_NS,
            key,
            || {
                let res = bench.run_transient()?;
                trace::add("spice.tran.runs", 1);
                trace::observe("spice.tran.steps", res.newton_iterations.len() as f64);
                for &iters in &res.newton_iterations {
                    trace::observe("spice.newton.iterations", iters as f64);
                }
                let d = bench.measure_edges(&res).ok_or_else(|| {
                    CircuitError::Measurement("FO1 half-swing crossings not found".to_owned())
                })?;
                Ok(vec![d.tp_hl.get(), d.tp_lh.get()])
            },
        )?;
        match rec.as_slice() {
            [tp_hl, tp_lh] => Ok(Fo1Delay {
                tp_hl: Seconds::new(*tp_hl),
                tp_lh: Seconds::new(*tp_lh),
            }),
            _ => Err(CircuitError::Measurement(
                "malformed spice.tran fo1 record".to_owned(),
            )),
        }
    }

    fn chain_energy(
        &self,
        chain: &InverterChain,
        v_dd: Volts,
    ) -> Result<EnergyPoint, CircuitError> {
        let _span = trace::span("spice.backend.chain_energy")
            .attr("stages", chain.stages)
            .attr("v_dd", v_dd.as_volts());
        let [e_sw, i_leak] = self.stage_metrics(&chain.pair, v_dd)?;
        let tp = self.fo1_delay(&chain.pair, v_dd)?.average();
        let n = chain.stages as f64;
        let t_cycle = Seconds::new(n * tp.get());
        let dynamic = Joules::new(chain.activity * n * e_sw);
        let leakage = Joules::new(n * i_leak * v_dd.as_volts() * t_cycle.get());
        Ok(EnergyPoint {
            v_dd,
            dynamic,
            leakage,
            t_cycle,
        })
    }

    fn minimum_energy_point(
        &self,
        chain: &InverterChain,
    ) -> Result<MinimumEnergyPoint, CircuitError> {
        let _span = trace::span("spice.backend.mep").attr("stages", chain.stages);
        // Coarser tolerance than the analytic search: every probe is a
        // transient + two DC solves on a miss. The probe sequence is a
        // pure function of the bounds, so a warm re-run replays the same
        // supplies and hits the cache throughout.
        let probes = StdCell::new(0u64);
        let failure: RefCell<Option<CircuitError>> = RefCell::new(None);
        let min = golden_section(
            |v| {
                if failure.borrow().is_some() {
                    return f64::INFINITY;
                }
                probes.set(probes.get() + 1);
                match self.chain_energy(chain, Volts::new(v)) {
                    Ok(point) => point.total().get(),
                    Err(e) => {
                        *failure.borrow_mut() = Some(e);
                        f64::INFINITY
                    }
                }
            },
            0.08,
            0.7,
            1e-3,
            200,
        );
        trace::add("circuits.chain.energy_points", probes.get());
        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        let v_min = Volts::new(min.x);
        let point = self.chain_energy(chain, v_min)?;
        Ok(MinimumEnergyPoint {
            v_min,
            energy: point.total(),
            point,
        })
    }

    fn delay_variability(
        &self,
        pair: &CmosPair,
        v_dd: Volts,
        samples: usize,
        seed: u64,
    ) -> Result<(DelayStatistics, Vec<f64>), CircuitError> {
        let _span = trace::span("spice.backend.montecarlo.delay")
            .attr("samples", samples)
            .attr("v_dd", v_dd.as_volts());
        Ok(montecarlo::spice_delay_variability(
            pair, v_dd, samples, seed,
        )?)
    }

    fn snm_variability(
        &self,
        pair: &CmosPair,
        v_dd: Volts,
        samples: usize,
        seed: u64,
    ) -> Result<(SnmStatistics, Vec<f64>), CircuitError> {
        let _span = trace::span("spice.backend.montecarlo.snm")
            .attr("samples", samples)
            .attr("v_dd", v_dd.as_volts());
        Ok(montecarlo::spice_snm_variability(pair, v_dd, samples, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_physics::device::DeviceParams;

    fn pair() -> CmosPair {
        CmosPair::balanced(DeviceParams::reference_90nm_nfet())
    }

    #[test]
    fn montecarlo_backends_agree_on_variability() {
        // The spice MC re-solves the same perturbed bias points the
        // analytic sweep evaluates in closed form, so σ/µ must agree
        // tightly; only GMIN-scale leakage separates the populations.
        let p = pair();
        let v = Volts::new(0.25);
        let (a, a_wall) = analytic_circuit().delay_variability(&p, v, 40, 5).unwrap();
        let (s, s_wall) = spice_circuit().delay_variability(&p, v, 40, 5).unwrap();
        assert!(a_wall.is_empty(), "analytic backend does not time samples");
        assert_eq!(s_wall.len(), 40);
        let rel = (a.sigma_over_mu - s.sigma_over_mu).abs() / a.sigma_over_mu;
        assert!(
            rel < 0.05,
            "sigma/mu analytic {} vs spice {}",
            a.sigma_over_mu,
            s.sigma_over_mu
        );
    }

    #[test]
    fn kind_round_trips_through_str() {
        for k in CircuitBackendKind::ALL {
            assert_eq!(k.as_str().parse::<CircuitBackendKind>().unwrap(), k);
            assert_eq!(k.to_string(), k.as_str());
        }
        assert!("verilog".parse::<CircuitBackendKind>().is_err());
        assert_eq!(CircuitBackendKind::default(), CircuitBackendKind::Analytic);
    }

    #[test]
    fn kind_selects_matching_instance() {
        for k in CircuitBackendKind::ALL {
            assert_eq!(k.instance().name(), k.as_str());
            assert_eq!(k.instance().cache_id(), k.as_str());
        }
    }

    #[test]
    fn analytic_backend_is_transparent() {
        // The seam's contract: routing through the analytic backend gives
        // bit-identical results to the direct calls the figures used to
        // make.
        let p = pair();
        let v = Volts::new(0.25);
        let via_trait = analytic_circuit().vtc(&p, v, 41).unwrap();
        let direct = Inverter::new(p).vtc(v, 41).unwrap();
        assert_eq!(via_trait, direct);

        let via_trait = analytic_circuit().fo1_delay(&p, v).unwrap();
        let direct = spice_fo1_delay(&p, v, FO1_TRANSIENT_STEPS).unwrap();
        assert_eq!(via_trait, direct);

        let chain = InverterChain::paper_chain(p);
        assert_eq!(
            analytic_circuit().chain_energy(&chain, v).unwrap(),
            chain.energy_at(v)
        );
        assert_eq!(
            analytic_circuit().minimum_energy_point(&chain).unwrap(),
            chain.minimum_energy_point()
        );
    }

    #[test]
    fn netlist_key_tracks_content() {
        use subvt_engine::KeyBuilder;
        use subvt_spice::netlist::Netlist;
        let p = pair();
        let (net_a, _) = Inverter::new(p).vtc_netlist(Volts::new(0.25));
        let (net_b, _) = Inverter::new(p).vtc_netlist(Volts::new(0.25));
        let key = |net: &Netlist| KeyBuilder::new("t").keyed(net).finish();
        assert_eq!(key(&net_a), key(&net_b), "same deck, same key");
        let (net_c, _) = Inverter::new(p).vtc_netlist(Volts::new(0.30));
        assert_ne!(key(&net_a), key(&net_c), "different supply, new key");
        let mut wide = p;
        wide.wp_um *= 1.5;
        let (net_d, _) = Inverter::new(wide).vtc_netlist(Volts::new(0.25));
        assert_ne!(key(&net_a), key(&net_d), "different device, new key");
    }

    #[test]
    fn spice_vtc_matches_analytic_deck() {
        // Same netlist, same DC sweep → the curves agree to solver
        // tolerance; and a second request is served from the cache.
        let p = pair();
        let v = Volts::new(0.25);
        let a = analytic_circuit().vtc(&p, v, 31).unwrap();
        let s = spice_circuit().vtc(&p, v, 31).unwrap();
        for i in 0..a.v_in.len() {
            assert!(
                (a.v_out[i] - s.v_out[i]).abs() < 1e-9,
                "v_in = {}: {} vs {}",
                a.v_in[i],
                a.v_out[i],
                s.v_out[i]
            );
        }
        let again = spice_circuit().vtc(&p, v, 31).unwrap();
        assert_eq!(s, again);
    }

    #[test]
    fn spice_chain_energy_shape_is_physical() {
        // Dynamic energy grows with supply, leakage-per-cycle shrinks
        // (shorter cycles), matching the Eq. 7 structure the analytic
        // model encodes.
        let chain = InverterChain::paper_chain(pair());
        let lo = spice_circuit()
            .chain_energy(&chain, Volts::new(0.20))
            .unwrap();
        let hi = spice_circuit()
            .chain_energy(&chain, Volts::new(0.35))
            .unwrap();
        assert!(hi.dynamic.get() > lo.dynamic.get());
        assert!(hi.t_cycle.get() < lo.t_cycle.get());
        assert!(lo.leakage.get() > 0.0 && lo.dynamic.get() > 0.0);
    }
}
