//! 6T SRAM cell static noise margins in subthreshold.
//!
//! The paper's §2.3.2 flags SRAM as the structure most exposed to the
//! `S_S`/SNM degradation it studies (its ref \[16\] is a sub-200 mV 6T
//! SRAM). This module provides hold- and read-mode butterfly SNM for a 6T
//! cell built from the same device pair the logic analyses use.

use subvt_spice::mna::SpiceError;
use subvt_units::Volts;

use crate::inverter::{CmosPair, Inverter, Vtc};
use crate::snm::butterfly_snm;
use crate::topology::{Cell, CellSpec, Load, Testbench};

/// How a butterfly curve that cannot be inverted (NaN samples or
/// non-monotone noise) surfaces through the `SpiceError`-typed SNM API —
/// the same shape `spice_fo1_delay` uses for a failed measurement.
const DEGENERATE_VTC: SpiceError = SpiceError::NoConvergence {
    iterations: 0,
    residual: f64::NAN,
};

/// A 6T SRAM cell: cross-coupled inverters plus NFET access transistors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramCell {
    /// The storage inverter pair.
    pub pair: CmosPair,
    /// Access transistor width in microns (NFET, same device as the
    /// pull-down but independently sized).
    pub w_access_um: f64,
}

impl SramCell {
    /// A conservatively-ratioed subthreshold cell: access device at half
    /// the pull-down width (cell ratio 2), the sizing style of the
    /// paper's ref \[16\].
    pub fn subthreshold_cell(pair: CmosPair) -> Self {
        Self {
            pair,
            w_access_um: 0.5 * pair.wn_um,
        }
    }

    /// Hold-mode static noise margin: butterfly of the two storage
    /// inverters with the access devices off.
    ///
    /// # Errors
    ///
    /// Propagates [`SpiceError`] from the VTC sweeps; an un-invertible
    /// (degenerate) butterfly curve reports as a non-convergence.
    pub fn hold_snm(&self, v_dd: Volts, points: usize) -> Result<f64, SpiceError> {
        let vtc = Inverter::new(self.pair).vtc(v_dd, points)?;
        butterfly_snm(&vtc, &vtc).ok_or(DEGENERATE_VTC)
    }

    /// Read-mode static noise margin: the internal "0" node is disturbed
    /// through the access transistor by the precharged bit-line (held at
    /// `V_dd`, the worst case), flattening the storage VTC.
    ///
    /// # Errors
    ///
    /// Propagates [`SpiceError`] from the solver; an un-invertible
    /// (degenerate) butterfly curve reports as a non-convergence.
    pub fn read_snm(&self, v_dd: Volts, points: usize) -> Result<f64, SpiceError> {
        let vtc = self.read_vtc(v_dd, points)?;
        butterfly_snm(&vtc, &vtc).ok_or(DEGENERATE_VTC)
    }

    /// Maximum bits per bit-line at the given supply — the paper's
    /// §2.3.2 concern: during a read, one accessed cell pulls the
    /// bit-line down with `I_on` of its access path while every other
    /// cell on the line leaks `I_off` *against* it (worst-case data
    /// pattern). A sensing margin requires
    /// `I_on > margin · (bits − 1) · I_off`, so
    /// `bits ≈ I_on/(margin·I_off)` — and the ratio shrinks exactly as
    /// the paper's Fig. 2 I_on/I_off does.
    ///
    /// `margin` is the required on/leakage separation (10× is a common
    /// sensing budget).
    pub fn max_bits_per_bitline(&self, v_dd: Volts, margin: f64) -> usize {
        assert!(margin > 1.0, "sensing margin must exceed unity");
        let nfet = self.pair.at_supply(v_dd).nfet_chars();
        let i_on = nfet.i_on.get() * self.w_access_um;
        let i_off = nfet.i_off.get() * self.w_access_um;
        ((i_on / (margin * i_off)).floor() as usize).max(1)
    }

    /// The read-disturbed transfer curve of one half-cell.
    ///
    /// # Errors
    ///
    /// Propagates [`SpiceError`] from the solver.
    pub fn read_vtc(&self, v_dd: Volts, points: usize) -> Result<Vtc, SpiceError> {
        CellSpec {
            cell: Cell::SramCell {
                w_access_um: self.w_access_um,
            },
            pair: self.pair,
            load: Load::None,
        }
        .compile(&Testbench::Vtc {
            v_dd,
            points,
            other: crate::gates::OtherInput::Low,
        })
        .expect("SRAM cells always compile a read-VTC bench")
        .run_transfer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_physics::device::DeviceParams;

    fn cell() -> SramCell {
        SramCell::subthreshold_cell(CmosPair::balanced(DeviceParams::reference_90nm_nfet()))
    }

    #[test]
    fn hold_snm_positive_in_subthreshold() {
        let snm = cell().hold_snm(Volts::new(0.25), 121).unwrap();
        assert!(snm > 0.02 && snm < 0.125, "hold SNM = {snm}");
    }

    #[test]
    fn read_snm_below_hold_snm() {
        // The access disturbance always costs margin.
        let c = cell();
        let hold = c.hold_snm(Volts::new(0.25), 121).unwrap();
        let read = c.read_snm(Volts::new(0.25), 121).unwrap();
        assert!(read < hold, "read SNM {read} must be below hold SNM {hold}");
    }

    #[test]
    fn read_vtc_zero_node_is_lifted() {
        // With the input high, the output should be pulled well above
        // ground by the access device fighting the pull-down.
        let c = cell();
        let vtc = c.read_vtc(Volts::new(0.25), 61).unwrap();
        let v_low = *vtc.v_out.last().unwrap();
        assert!(v_low > 0.005, "read-disturb level = {v_low}");
    }

    #[test]
    fn bits_per_line_shrinks_with_supply() {
        // Lower V_dd → smaller I_on/I_off → fewer bits share a bit-line.
        let c = cell();
        let at_350 = c.max_bits_per_bitline(Volts::new(0.35), 10.0);
        let at_200 = c.max_bits_per_bitline(Volts::new(0.20), 10.0);
        assert!(
            at_350 > 2 * at_200,
            "350 mV allows {at_350} bits, 200 mV only {at_200}"
        );
        assert!(at_200 >= 1);
    }

    #[test]
    fn bits_per_line_scales_with_margin() {
        let c = cell();
        let tight = c.max_bits_per_bitline(Volts::new(0.3), 5.0);
        let loose = c.max_bits_per_bitline(Volts::new(0.3), 50.0);
        assert!(tight > loose);
    }

    #[test]
    #[should_panic(expected = "sensing margin")]
    fn rejects_sub_unity_margin() {
        let _ = cell().max_bits_per_bitline(Volts::new(0.3), 0.5);
    }

    #[test]
    fn wider_access_device_degrades_read_snm() {
        let mut weak = cell();
        weak.w_access_um = 0.25 * weak.pair.wn_um;
        let mut strong = cell();
        strong.w_access_um = 2.0 * strong.pair.wn_um;
        let snm_weak = weak.read_snm(Volts::new(0.25), 81).unwrap();
        let snm_strong = strong.read_snm(Volts::new(0.25), 81).unwrap();
        assert!(
            snm_strong < snm_weak,
            "strong access {snm_strong} vs weak access {snm_weak}"
        );
    }
}
