//! Gate delay: SPICE-measured FO1 inverter delay and the analytic
//! effective-current estimate (paper Eq. 4/Eq. 5).

use subvt_physics::device::DeviceKind;
use subvt_physics::MosModel;
use subvt_spice::measure::{propagation_delay, Edge};
use subvt_spice::mna::SpiceError;
use subvt_spice::netlist::{Netlist, Waveform};
use subvt_units::{Seconds, Volts};

use crate::inverter::CmosPair;
use crate::topology::{Cell, CellSpec, CompiledBench, Load, Stimulus, Testbench};

/// Analytic FO1 propagation delay — paper Eq. 4 with `k_d = ln 2` and the
/// effective drive current evaluated at the half-swing point:
/// `t_p = ln2 · C_L·V_dd / I_d(V_gs = V_dd, V_ds = V_dd/2)`.
///
/// Valid across the full supply range because the all-region I–V is used;
/// in subthreshold it reduces to the paper's Eq. 5 exponential form.
pub fn analytic_fo1_delay(pair: &CmosPair, v_dd: Volts) -> Seconds {
    let pair = pair.at_supply(v_dd);
    let c_l = pair.input_capacitance() + pair.output_capacitance();
    let n_model = pair.nfet_model();
    let p_model = pair.pfet_model();
    let i_n = n_model
        .drain_current(v_dd, Volts::new(v_dd.as_volts() / 2.0))
        .get()
        * pair.wn_um;
    let i_p = p_model
        .drain_current(v_dd, Volts::new(v_dd.as_volts() / 2.0))
        .get()
        * pair.wp_um;
    // Pull-down and pull-up delays averaged.
    let tp_hl = c_l * v_dd.as_volts() / i_n;
    let tp_lh = c_l * v_dd.as_volts() / i_p;
    Seconds::new(core::f64::consts::LN_2 * 0.5 * (tp_hl + tp_lh))
}

/// Branch index of the drain source `VD` inside a
/// [`drive_current_deck`] — the second voltage source of either
/// polarity's deck, so the drive current is `|branch_currents[1]|`.
pub(crate) const DRIVE_DECK_DRAIN_BRANCH: usize = 1;

/// Single-device deck biased at the Eq. 4 drive point
/// (`|V_gs| = V_dd`, `|V_ds| = V_dd/2`). Every terminal is pinned by a
/// voltage source, so Newton converges in a couple of iterations and the
/// drive current is read directly off the drain source's branch
/// ([`DRIVE_DECK_DRAIN_BRANCH`]). The spice-backed Monte-Carlo sweep
/// clones and re-thresholds this deck per sample.
pub(crate) fn drive_current_deck(model: MosModel, width_um: f64, v_dd: f64) -> Netlist {
    let mut net = Netlist::new();
    let d = net.node("d");
    let g = net.node("g");
    match model.kind {
        DeviceKind::Nfet => {
            net.vsource("VG", g, Netlist::GROUND, Waveform::Dc(v_dd));
            net.vsource("VD", d, Netlist::GROUND, Waveform::Dc(v_dd / 2.0));
            net.mosfet("M1", model, width_um, d, g, Netlist::GROUND);
        }
        DeviceKind::Pfet => {
            let s = net.node("s");
            net.vsource("VG", g, Netlist::GROUND, Waveform::Dc(0.0));
            net.vsource("VD", d, Netlist::GROUND, Waveform::Dc(v_dd / 2.0));
            net.vsource("VS", s, Netlist::GROUND, Waveform::Dc(v_dd));
            net.mosfet("M1", model, width_um, d, g, s);
        }
    }
    net
}

/// Result of a SPICE FO1 delay measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fo1Delay {
    /// High-to-low propagation delay of the measured stage.
    pub tp_hl: Seconds,
    /// Low-to-high propagation delay of the measured stage.
    pub tp_lh: Seconds,
}

impl Fo1Delay {
    /// Average propagation delay `(t_pHL + t_pLH)/2`.
    pub fn average(&self) -> Seconds {
        Seconds::new(0.5 * (self.tp_hl.get() + self.tp_lh.get()))
    }
}

/// Measures FO1 inverter delay by transient simulation of a three-stage
/// chain (shaping stage → device under test → load stage), reading the
/// 50 % crossings around the middle stage.
///
/// `steps` controls the transient resolution (≥500 recommended; tests use
/// less for speed).
///
/// # Errors
///
/// Returns [`SpiceError`] if the solver fails, or
/// [`SpiceError::NoConvergence`] if crossings cannot be found (window
/// heuristics derive the time scale from the analytic delay, so this is
/// rare).
pub fn spice_fo1_delay(pair: &CmosPair, v_dd: Volts, steps: usize) -> Result<Fo1Delay, SpiceError> {
    let bench = fo1_bench(pair, v_dd, steps);
    let res = bench.run_transient()?;
    bench
        .measure_edges(&res)
        .ok_or(crate::topology::MEASUREMENT_FAILED)
}

/// The FO1 delay test bench compiled from the topology layer: shaping
/// stage → device under test → load stage, FO1-terminated, driven by one
/// full pulse whose timing is derived from the analytic delay estimate.
/// Shared by [`spice_fo1_delay`] and the circuit backends so both
/// measure the same deck.
pub(crate) fn fo1_bench(pair: &CmosPair, v_dd: Volts, steps: usize) -> CompiledBench {
    CellSpec {
        cell: Cell::InverterChain(3),
        pair: *pair,
        load: Load::Fanout(1.0),
    }
    .compile(&Testbench::Transient {
        v_dd,
        stimulus: Stimulus::DelayPulse,
        steps,
    })
    .expect("inverter chains always compile a delay bench")
}

/// Reads both propagation delays of the measured stage off a transient
/// result. The stage input falls first (the source rises → stage X1
/// inverts), so the first measured edge at the output is rising (t_pLH),
/// then the reverse.
pub(crate) fn measure_fo1(
    res: &subvt_spice::transient::TransientResult,
    stage_in: usize,
    stage_out: usize,
    vdd: f64,
) -> Option<Fo1Delay> {
    let tp_lh = propagation_delay(res, stage_in, stage_out, vdd, Edge::Falling)?;
    let tp_hl = propagation_delay_second(res, stage_in, stage_out, vdd)?;
    Some(Fo1Delay {
        tp_hl: Seconds::new(tp_hl),
        tp_lh: Seconds::new(tp_lh),
    })
}

/// Delay from the *second* input edge (rising at the measured stage's
/// input) to the following output crossing.
fn propagation_delay_second(
    res: &subvt_spice::transient::TransientResult,
    input: usize,
    output: usize,
    swing: f64,
) -> Option<f64> {
    use subvt_spice::measure::crossing_time;
    let level = swing / 2.0;
    let t_in = crossing_time(res, input, level, Edge::Rising, 0)?;
    let mut nth = 0;
    loop {
        let t_out = crossing_time(res, output, level, Edge::Any, nth)?;
        if t_out > t_in {
            return Some(t_out - t_in);
        }
        nth += 1;
        if nth > 64 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_physics::device::DeviceParams;

    fn pair() -> CmosPair {
        CmosPair::balanced(DeviceParams::reference_90nm_nfet())
    }

    #[test]
    fn analytic_delay_subthreshold_scale() {
        // At 250 mV, drive ≈ tens of nA/µm and C_L ≈ a few fF:
        // delay in the 10 ns – 10 µs window.
        let tp = analytic_fo1_delay(&pair(), Volts::new(0.25));
        assert!(
            tp.get() > 1.0e-8 && tp.get() < 1.0e-5,
            "tp = {} s",
            tp.get()
        );
    }

    #[test]
    fn analytic_delay_nominal_scale() {
        // At 1.2 V the FO1 delay should be picoseconds.
        let tp = analytic_fo1_delay(&pair(), Volts::new(1.2));
        assert!(
            tp.as_picoseconds() > 0.5 && tp.as_picoseconds() < 100.0,
            "tp = {} ps",
            tp.as_picoseconds()
        );
    }

    #[test]
    fn delay_explodes_exponentially_below_threshold() {
        // Eq. 5: each S_S of supply reduction costs ~10× delay deep in
        // subthreshold.
        let p = pair();
        let t1 = analytic_fo1_delay(&p, Volts::new(0.30)).get();
        let t2 = analytic_fo1_delay(&p, Volts::new(0.20)).get();
        assert!(t2 / t1 > 5.0, "ratio {}", t2 / t1);
    }

    #[test]
    fn spice_delay_matches_analytic_within_factor_three() {
        let p = pair();
        let v = Volts::new(0.25);
        let spice = spice_fo1_delay(&p, v, 600).unwrap();
        let analytic = analytic_fo1_delay(&p, v);
        let ratio = spice.average().get() / analytic.get();
        assert!(
            (0.33..3.0).contains(&ratio),
            "spice {:.3e} vs analytic {:.3e} (ratio {ratio})",
            spice.average().get(),
            analytic.get()
        );
    }

    #[test]
    fn spice_delay_edges_both_positive() {
        let d = spice_fo1_delay(&pair(), Volts::new(0.25), 600).unwrap();
        assert!(d.tp_hl.get() > 0.0 && d.tp_lh.get() > 0.0);
    }
}
