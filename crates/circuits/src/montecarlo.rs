//! Monte-Carlo threshold-voltage variability (extension).
//!
//! The paper's introduction motivates sub-V_th caution with the dramatic
//! growth of timing variability at low supplies. This module quantifies
//! that: Pelgrom-law random dopant fluctuation `σ_VT = A_VT/√(W·L)`
//! applied to the compact model, propagated to gate delay through the
//! exponential subthreshold I–V.
//!
//! Sample loops run on the [`subvt_engine`] thread pool. Every sample
//! draws from its own [`SplitMix64::stream`], so the population is a
//! pure function of `(seed, sample index)` — identical no matter how
//! many workers execute the sweep.

use subvt_engine::trace;
use subvt_physics::device::DeviceKind;
use subvt_spice::mna::SpiceError;
use subvt_spice::mna::{dc_operating_point, dc_operating_point_from, dc_sweep, DcSolution};
use subvt_spice::netlist::Netlist;
use subvt_units::{Seconds, Volts};

use crate::inverter::CmosPair;
use crate::rng::SplitMix64;

/// Pelgrom mismatch coefficient, volts·µm (≈3.5 mV·µm for 90 nm-class
/// oxides; scales roughly with `T_ox`).
pub fn pelgrom_coefficient(t_ox_nm: f64) -> f64 {
    1.7e-3 * t_ox_nm
}

/// Per-device `σ_VT` for a given gate area.
pub fn sigma_vth(t_ox_nm: f64, w_um: f64, l_um: f64) -> Volts {
    assert!(w_um > 0.0 && l_um > 0.0, "device area must be positive");
    Volts::new(pelgrom_coefficient(t_ox_nm) / (w_um * l_um).sqrt())
}

/// Splits `samples` into contiguous index ranges, one per engine job
/// (a few per worker so stealing can balance uneven chunks), and maps
/// `per_sample` over every index in parallel, preserving order.
fn parallel_samples<T, F>(samples: usize, per_sample: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(u64) -> T + Send + Sync + 'static,
{
    let executor = subvt_engine::global();
    let chunk = samples.div_ceil(executor.workers() * 4).max(16);
    let ranges: Vec<(u64, u64)> = (0..samples)
        .step_by(chunk)
        .map(|start| (start as u64, samples.min(start + chunk) as u64))
        .collect();
    let chunks = executor.map(ranges, move |(start, end)| {
        let out = (start..end).map(&per_sample).collect::<Vec<T>>();
        // Per-batch progress: long sweeps stay observable mid-flight.
        trace::add("montecarlo.batches", 1);
        trace::add("montecarlo.samples", end - start);
        out
    });
    chunks.into_iter().flatten().collect()
}

/// Summary statistics of a Monte-Carlo delay population.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayStatistics {
    /// Mean delay.
    pub mean: Seconds,
    /// Standard deviation of delay.
    pub std_dev: Seconds,
    /// `σ/µ` — the paper-motivating variability metric.
    pub sigma_over_mu: f64,
    /// All sampled delays (for downstream percentile analysis).
    pub samples: Vec<f64>,
}

/// Runs a Monte-Carlo sweep of FO1 delay under `V_th` mismatch at supply
/// `v_dd`. Deterministic for a given `seed`.
///
/// Each sample perturbs the NFET and PFET thresholds independently and
/// recomputes the analytic effective-current delay.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn delay_variability(
    pair: &CmosPair,
    v_dd: Volts,
    samples: usize,
    seed: u64,
) -> DelayStatistics {
    assert!(samples > 0, "need at least one sample");
    let _span = trace::span("montecarlo.delay")
        .attr("samples", samples)
        .attr("v_dd", v_dd.as_volts());
    let pair = pair.at_supply(v_dd);
    let l_um = pair.nfet.geometry.l_poly.get() * 1e-3;
    let sig_n = sigma_vth(pair.nfet.geometry.t_ox.get(), pair.wn_um, l_um).as_volts();
    let sig_p = sigma_vth(pair.pfet.geometry.t_ox.get(), pair.wp_um, l_um).as_volts();

    let c_l = pair.input_capacitance() + pair.output_capacitance();
    let base_n = pair.nfet_model();
    let base_p = pair.pfet_model();
    let vdd = v_dd.as_volts();
    let half = Volts::new(vdd / 2.0);
    let (wn_um, wp_um) = (pair.wn_um, pair.wp_um);

    let delays = parallel_samples(samples, move |i| {
        let mut rng = SplitMix64::stream(seed, i);
        let dn = rng.next_gaussian() * sig_n;
        let dp = rng.next_gaussian() * sig_p;
        let mut mn = base_n;
        mn.v_th_lin = Volts::new(mn.v_th_lin.as_volts() + dn);
        let mut mp = base_p;
        mp.v_th_lin = Volts::new(mp.v_th_lin.as_volts() + dp);
        let i_n = mn.drain_current(v_dd, half).get() * wn_um;
        let i_p = mp.drain_current(v_dd, half).get() * wp_um;
        core::f64::consts::LN_2 * 0.5 * (c_l * vdd / i_n + c_l * vdd / i_p)
    });

    let n = delays.len() as f64;
    let mean = delays.iter().sum::<f64>() / n;
    let var = delays.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n;
    let std_dev = var.sqrt();
    DelayStatistics {
        mean: Seconds::new(mean),
        std_dev: Seconds::new(std_dev),
        sigma_over_mu: std_dev / mean,
        samples: delays,
    }
}

/// Solves one perturbed drive deck warm-started from the nominal
/// operating point (cold fallback) and reads the drive-current magnitude
/// off the drain source's branch. `None` marks a solver failure; the
/// caller counts it as a failed sample.
fn perturbed_drive(template: &Netlist, nominal: &DcSolution, d_vth: f64) -> Option<f64> {
    let mut net = template.clone();
    net.for_each_mosfet_mut(|_, inst| {
        inst.model.v_th_lin = Volts::new(inst.model.v_th_lin.as_volts() + d_vth);
    });
    dc_operating_point_from(&net, nominal)
        .or_else(|_| dc_operating_point(&net))
        .ok()
        .map(|sol| sol.branch_currents[crate::delay::DRIVE_DECK_DRAIN_BRANCH].abs())
}

/// Spice-backed Monte-Carlo FO1 delay variability: the same Pelgrom
/// perturbations and Eq. 4 delay formula as [`delay_variability`], but
/// with each sample's drive currents solved by the MNA engine on a
/// per-polarity [drive deck](crate::delay) instead of evaluated from the
/// compact I–V directly.
///
/// Every sample warm-starts Newton from the *nominal* (unperturbed)
/// operating point — not from a neighboring sample — so each sample stays
/// a pure function of `(seed, index)` regardless of how the executor
/// chunks the range. Failed samples (either polarity refusing to
/// converge) are dropped from the statistics; the caller can recover the
/// failure count as `samples − stats.samples.len()`.
///
/// Returns the statistics plus per-sample wall-clock milliseconds, in
/// sample order, for bench latency quantiles. Wall times are
/// machine-dependent and must never reach deterministic output streams.
///
/// # Errors
///
/// Returns [`SpiceError`] only if the nominal decks themselves fail to
/// solve.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn spice_delay_variability(
    pair: &CmosPair,
    v_dd: Volts,
    samples: usize,
    seed: u64,
) -> Result<(DelayStatistics, Vec<f64>), SpiceError> {
    assert!(samples > 0, "need at least one sample");
    let _span = trace::span("montecarlo.spice.delay")
        .attr("samples", samples)
        .attr("v_dd", v_dd.as_volts());
    let pair = pair.at_supply(v_dd);
    let l_um = pair.nfet.geometry.l_poly.get() * 1e-3;
    let sig_n = sigma_vth(pair.nfet.geometry.t_ox.get(), pair.wn_um, l_um).as_volts();
    let sig_p = sigma_vth(pair.pfet.geometry.t_ox.get(), pair.wp_um, l_um).as_volts();
    let c_l = pair.input_capacitance() + pair.output_capacitance();
    let vdd = v_dd.as_volts();

    let deck_n = crate::delay::drive_current_deck(pair.nfet_model(), pair.wn_um, vdd);
    let deck_p = crate::delay::drive_current_deck(pair.pfet_model(), pair.wp_um, vdd);
    // One cold nominal solve per polarity; all samples warm-start here.
    let nominal_n = dc_operating_point(&deck_n)?;
    let nominal_p = dc_operating_point(&deck_p)?;

    let outcomes = parallel_samples(samples, move |i| {
        let t0 = std::time::Instant::now();
        // Identical draw order to the analytic sweep: dn then dp.
        let mut rng = SplitMix64::stream(seed, i);
        let dn = rng.next_gaussian() * sig_n;
        let dp = rng.next_gaussian() * sig_p;
        let i_n = perturbed_drive(&deck_n, &nominal_n, dn);
        let i_p = perturbed_drive(&deck_p, &nominal_p, dp);
        let delay = match (i_n, i_p) {
            (Some(i_n), Some(i_p)) => {
                core::f64::consts::LN_2 * 0.5 * (c_l * vdd / i_n + c_l * vdd / i_p)
            }
            _ => f64::NAN,
        };
        (delay, t0.elapsed().as_secs_f64() * 1e3)
    });

    let mut wall_ms = Vec::with_capacity(outcomes.len());
    let mut delays = Vec::with_capacity(outcomes.len());
    for (delay, ms) in outcomes {
        wall_ms.push(ms);
        if delay.is_finite() {
            delays.push(delay);
        }
    }
    let n = delays.len().max(1) as f64;
    let mean = delays.iter().sum::<f64>() / n;
    let var = delays.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n;
    let std_dev = var.sqrt();
    Ok((
        DelayStatistics {
            mean: Seconds::new(mean),
            std_dev: Seconds::new(std_dev),
            sigma_over_mu: std_dev / mean,
            samples: delays,
        },
        wall_ms,
    ))
}

/// Summary statistics of a Monte-Carlo SNM population.
#[derive(Debug, Clone, PartialEq)]
pub struct SnmStatistics {
    /// Mean SNM, volts.
    pub mean: Volts,
    /// Standard deviation, volts.
    pub std_dev: Volts,
    /// Fraction of samples with no restoring margin at all (SNM ≤ 0 or
    /// the VTC never reaches unity gain) — functional-yield proxy.
    pub failure_fraction: f64,
    /// All finite sampled SNM values, volts.
    pub samples: Vec<f64>,
}

/// Monte-Carlo inverter SNM under `V_th` mismatch, using the analytic
/// Eq. 3 VTC (fast enough for thousands of samples). Deterministic for a
/// given `seed`.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn snm_variability(pair: &CmosPair, v_dd: Volts, samples: usize, seed: u64) -> SnmStatistics {
    use crate::inverter::Vtc;
    use subvt_physics::math::linspace;

    assert!(samples > 0, "need at least one sample");
    let _span = trace::span("montecarlo.snm")
        .attr("samples", samples)
        .attr("v_dd", v_dd.as_volts());
    let pair = pair.at_supply(v_dd);
    let l_um = pair.nfet.geometry.l_poly.get() * 1e-3;
    let sig_n = sigma_vth(pair.nfet.geometry.t_ox.get(), pair.wn_um, l_um).as_volts();
    let sig_p = sigma_vth(pair.pfet.geometry.t_ox.get(), pair.wp_um, l_um).as_volts();

    let n = pair.nfet_chars();
    let p = pair.pfet_chars();
    let vt = pair.nfet.temperature.thermal_voltage().as_volts();
    let vdd = v_dd.as_volts();
    let io_n = n.i0.get() * pair.wn_um;
    let io_p = p.i0.get() * pair.wp_um;
    let v_in_grid = linspace(0.0, vdd, 101);

    // NaN marks a failed sample (no restoring margin); the sampled value
    // itself is always finite, so the marker is unambiguous.
    let outcomes = parallel_samples(samples, move |i| {
        let mut rng = SplitMix64::stream(seed, i);
        let vth_n = n.v_th_sat.as_volts() + rng.next_gaussian() * sig_n;
        let vth_p = p.v_th_sat.as_volts() + rng.next_gaussian() * sig_p;
        // Eq. 3(a) current balance with mismatched thresholds.
        let residual = |v_in: f64, v_out: f64| {
            let i_n = io_n * ((v_in - vth_n) / (n.m * vt)).exp() * (1.0 - (-v_out / vt).exp());
            let i_p = io_p
                * ((vdd - v_in - vth_p) / (p.m * vt)).exp()
                * (1.0 - (-(vdd - v_out) / vt).exp());
            i_n - i_p
        };
        let v_out: Vec<f64> = v_in_grid
            .iter()
            .map(|&vi| {
                subvt_physics::math::bisect(|vo| residual(vi, vo), 1e-9, vdd - 1e-9, 1e-10, 120)
                    .map(|r| r.x)
                    .unwrap_or(if residual(vi, vdd / 2.0) > 0.0 {
                        0.0
                    } else {
                        vdd
                    })
            })
            .collect();
        let vtc = Vtc {
            v_in: v_in_grid.clone(),
            v_out,
            v_dd: vdd,
        };
        crate::snm::snm_sample(&vtc)
    });

    let vals: Vec<f64> = outcomes.iter().copied().filter(|v| v.is_finite()).collect();
    let failures = outcomes.len() - vals.len();
    let count = vals.len().max(1) as f64;
    let mean = vals.iter().sum::<f64>() / count;
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count;
    SnmStatistics {
        mean: Volts::new(mean),
        std_dev: Volts::new(var.sqrt()),
        failure_fraction: failures as f64 / samples as f64,
        samples: vals,
    }
}

/// VTC sweep resolution of the spice-backed SNM samples: enough points
/// for the gain = −1 interpolation of [`crate::snm::noise_margins`] to
/// land within a millivolt, small enough that a sample stays a few dozen
/// warm-started Newton solves.
const SPICE_SNM_VTC_POINTS: usize = 61;

/// Spice-backed Monte-Carlo inverter SNM: per sample, the compiled VTC
/// deck is re-thresholded (NFET and PFET drawn independently, same order
/// as [`snm_variability`]) and swept by the MNA engine; the margins come
/// off the solved curve via [`crate::snm::snm_sample`].
///
/// Unlike [`snm_variability`] — which inverts the closed-form Eq. 3(a)
/// balance — this path exercises the full compact model, so DIBL and
/// mobility degradation shape the sampled curves. A sample whose sweep
/// fails to converge counts toward `failure_fraction` like a
/// margin-less curve.
///
/// Returns the statistics plus per-sample wall-clock milliseconds, in
/// sample order (machine-dependent; bench artifacts only).
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn spice_snm_variability(
    pair: &CmosPair,
    v_dd: Volts,
    samples: usize,
    seed: u64,
) -> (SnmStatistics, Vec<f64>) {
    use crate::gates::OtherInput;
    use crate::inverter::Vtc;
    use crate::topology::{CellSpec, MeasurePlan, Testbench};
    use subvt_physics::math::linspace;

    assert!(samples > 0, "need at least one sample");
    let _span = trace::span("montecarlo.spice.snm")
        .attr("samples", samples)
        .attr("v_dd", v_dd.as_volts());
    let pair = pair.at_supply(v_dd);
    let l_um = pair.nfet.geometry.l_poly.get() * 1e-3;
    let sig_n = sigma_vth(pair.nfet.geometry.t_ox.get(), pair.wn_um, l_um).as_volts();
    let sig_p = sigma_vth(pair.pfet.geometry.t_ox.get(), pair.wp_um, l_um).as_volts();

    let bench = CellSpec::inverter(pair)
        .compile(&Testbench::Vtc {
            v_dd,
            points: SPICE_SNM_VTC_POINTS,
            other: OtherInput::Low,
        })
        .expect("inverter VTC always compiles");
    let MeasurePlan::DcTransfer {
        source,
        v_stop,
        points,
        output,
    } = bench.plan
    else {
        unreachable!("VTC bench compiles to a DC transfer plan");
    };
    let template = bench.net;
    let sweep = linspace(0.0, v_stop, points);

    let outcomes = parallel_samples(samples, move |i| {
        let t0 = std::time::Instant::now();
        let mut rng = SplitMix64::stream(seed, i);
        let dn = rng.next_gaussian() * sig_n;
        let dp = rng.next_gaussian() * sig_p;
        let mut net = template.clone();
        net.for_each_mosfet_mut(|_, inst| {
            let d = match inst.model.kind {
                DeviceKind::Nfet => dn,
                DeviceKind::Pfet => dp,
            };
            inst.model.v_th_lin = Volts::new(inst.model.v_th_lin.as_volts() + d);
        });
        let snm = match dc_sweep(&net, source, &sweep) {
            Ok(sols) => {
                let vtc = Vtc {
                    v_in: sweep.clone(),
                    v_out: sols.iter().map(|s| s.node_voltages[output]).collect(),
                    v_dd: v_stop,
                };
                crate::snm::snm_sample(&vtc)
            }
            Err(_) => f64::NAN,
        };
        (snm, t0.elapsed().as_secs_f64() * 1e3)
    });

    let mut wall_ms = Vec::with_capacity(outcomes.len());
    let mut vals = Vec::with_capacity(outcomes.len());
    for (snm, ms) in outcomes {
        wall_ms.push(ms);
        if snm.is_finite() {
            vals.push(snm);
        }
    }
    let failures = samples - vals.len();
    let count = vals.len().max(1) as f64;
    let mean = vals.iter().sum::<f64>() / count;
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count;
    (
        SnmStatistics {
            mean: Volts::new(mean),
            std_dev: Volts::new(var.sqrt()),
            failure_fraction: failures as f64 / samples as f64,
            samples: vals,
        },
        wall_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use subvt_physics::device::DeviceParams;

    fn pair() -> CmosPair {
        CmosPair::balanced(DeviceParams::reference_90nm_nfet())
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = delay_variability(&pair(), Volts::new(0.25), 100, 42);
        let b = delay_variability(&pair(), Volts::new(0.25), 100, 42);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn different_seeds_differ() {
        let a = delay_variability(&pair(), Volts::new(0.25), 50, 1);
        let b = delay_variability(&pair(), Volts::new(0.25), 50, 2);
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn subthreshold_variability_much_larger_than_nominal() {
        // The paper's core variability argument: σ/µ explodes at low V_dd
        // because delay depends exponentially on V_th.
        let p = pair();
        let sub = delay_variability(&p, Volts::new(0.25), 400, 7);
        let nom = delay_variability(&p, Volts::new(1.2), 400, 7);
        assert!(
            sub.sigma_over_mu > 3.0 * nom.sigma_over_mu,
            "sub {} vs nominal {}",
            sub.sigma_over_mu,
            nom.sigma_over_mu
        );
    }

    #[test]
    fn sigma_vth_shrinks_with_area() {
        let small = sigma_vth(2.1, 0.5, 0.065);
        let large = sigma_vth(2.1, 2.0, 0.065);
        assert!(large.as_volts() < small.as_volts());
        assert!((small.as_volts() / large.as_volts() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn snm_variability_is_deterministic_and_positive() {
        let stats = snm_variability(&pair(), Volts::new(0.25), 60, 3);
        let again = snm_variability(&pair(), Volts::new(0.25), 60, 3);
        assert_eq!(stats.samples, again.samples);
        assert!(stats.mean.as_volts() > 0.03 && stats.mean.as_volts() < 0.12);
        assert!(stats.std_dev.as_volts() > 0.0);
    }

    #[test]
    fn snm_spread_grows_at_lower_supply_relative_to_mean() {
        let p = pair();
        let lo = snm_variability(&p, Volts::new(0.20), 120, 9);
        let hi = snm_variability(&p, Volts::new(0.35), 120, 9);
        let rel_lo = lo.std_dev.as_volts() / lo.mean.as_volts();
        let rel_hi = hi.std_dev.as_volts() / hi.mean.as_volts();
        assert!(
            rel_lo > rel_hi,
            "relative SNM spread must grow at low V_dd: {rel_lo} vs {rel_hi}"
        );
    }

    #[test]
    fn spice_delay_matches_analytic_per_sample() {
        // Same seed → same perturbations; the spice drive deck pins every
        // terminal, so each sample's current differs from the compact
        // model only by the GMIN leakage at the drain node (~1e-4
        // relative in deep subthreshold).
        let p = pair();
        let v = Volts::new(0.25);
        let analytic = delay_variability(&p, v, 48, 42);
        let (spice, wall_ms) = spice_delay_variability(&p, v, 48, 42).unwrap();
        assert_eq!(spice.samples.len(), 48, "no sample may fail");
        assert_eq!(wall_ms.len(), 48);
        for (a, s) in analytic.samples.iter().zip(&spice.samples) {
            assert!(
                ((a - s) / a).abs() < 1e-2,
                "analytic {a:.6e} vs spice {s:.6e}"
            );
        }
    }

    #[test]
    fn spice_delay_deterministic_for_fixed_seed() {
        let p = pair();
        let (a, _) = spice_delay_variability(&p, Volts::new(0.3), 40, 7).unwrap();
        let (b, _) = spice_delay_variability(&p, Volts::new(0.3), 40, 7).unwrap();
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn spice_snm_deterministic_and_close_to_analytic() {
        let p = pair();
        let v = Volts::new(0.25);
        let (spice, wall_ms) = spice_snm_variability(&p, v, 24, 3);
        let (again, _) = spice_snm_variability(&p, v, 24, 3);
        assert_eq!(spice.samples, again.samples);
        assert_eq!(wall_ms.len(), 24);
        assert!(spice.std_dev.as_volts() > 0.0);
        // Eq. 3(a) and the full compact model agree on the margin scale.
        let analytic = snm_variability(&p, v, 24, 3);
        let ratio = spice.mean.as_volts() / analytic.mean.as_volts();
        assert!(
            (0.6..1.6).contains(&ratio),
            "spice {} vs analytic {} (ratio {ratio})",
            spice.mean.as_volts(),
            analytic.mean.as_volts()
        );
    }

    #[test]
    fn mean_close_to_nominal_delay() {
        let p = pair();
        let stats = delay_variability(&p, Volts::new(0.3), 800, 11);
        let nominal = crate::delay::analytic_fo1_delay(&p, Volts::new(0.3)).get();
        // Lognormal-ish skew pushes the mean above nominal, but within 2x.
        let ratio = stats.mean.get() / nominal;
        assert!((0.8..2.0).contains(&ratio), "ratio {ratio}");
    }
}
