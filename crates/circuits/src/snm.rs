//! Static noise margins.
//!
//! The paper (§2.3.2) defines SNM at the unity-gain points of the VTC:
//! the inputs where `dV_out/dV_in = −1` delimit the legal logic levels,
//! giving `NM_L = V_IL − V_OL` and `NM_H = V_OH − V_IH`; the reported SNM
//! is their minimum. For bistable structures (SRAM) the butterfly
//! maximum-square method is also provided.

use crate::inverter::Vtc;

/// Noise-margin decomposition of a VTC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseMargins {
    /// Input low threshold (first gain = −1 point).
    pub v_il: f64,
    /// Input high threshold (second gain = −1 point).
    pub v_ih: f64,
    /// Output high level at `v_in = V_IL`.
    pub v_oh: f64,
    /// Output low level at `v_in = V_IH`.
    pub v_ol: f64,
    /// Low noise margin `V_IL − V_OL`.
    pub nm_low: f64,
    /// High noise margin `V_OH − V_IH`.
    pub nm_high: f64,
}

impl NoiseMargins {
    /// The static noise margin: `min(NM_L, NM_H)` — the paper's reported
    /// quantity.
    pub fn snm(&self) -> f64 {
        self.nm_low.min(self.nm_high)
    }
}

/// SNM of a transfer curve as a plain sample value: the positive
/// noise-margin minimum, or `NaN` when the curve has no restoring margin
/// — the Monte-Carlo failure marker shared by the analytic and spice
/// variability sweeps.
pub fn snm_sample(vtc: &Vtc) -> f64 {
    match noise_margins(vtc) {
        Some(nm) if nm.snm() > 0.0 => nm.snm(),
        _ => f64::NAN,
    }
}

/// Extracts gain = −1 noise margins from a sampled VTC.
///
/// Returns `None` when the curve never reaches unity gain (a VTC with
/// |peak gain| < 1 has no restoring region — possible for very low
/// supplies or badly skewed inverters).
pub fn noise_margins(vtc: &Vtc) -> Option<NoiseMargins> {
    let g = vtc.gain();
    let n = g.len();
    if n < 3 {
        return None;
    }

    // Walk the gain curve for crossings of −1. The first crossing
    // (entering the high-gain region) is V_IL; the last (leaving it)
    // is V_IH.
    let mut v_il = None;
    let mut v_ih = None;
    for i in 1..n {
        let (g0, g1) = (g[i - 1], g[i]);
        if (g0 + 1.0) * (g1 + 1.0) <= 0.0 && g0 != g1 {
            let f = (-1.0 - g0) / (g1 - g0);
            let v = vtc.v_in[i - 1] + f * (vtc.v_in[i] - vtc.v_in[i - 1]);
            let vo = vtc.v_out[i - 1] + f * (vtc.v_out[i] - vtc.v_out[i - 1]);
            if v_il.is_none() {
                v_il = Some((v, vo));
            } else {
                v_ih = Some((v, vo));
            }
        }
    }
    let (v_il, v_oh) = v_il?;
    let (v_ih, v_ol) = v_ih?;
    Some(NoiseMargins {
        v_il,
        v_ih,
        v_oh,
        v_ol,
        nm_low: v_il - v_ol,
        nm_high: v_oh - v_ih,
    })
}

/// Butterfly (maximum-square) SNM of a bistable loop formed by two VTCs
/// (`vtc_a` drives `vtc_b` drives `vtc_a`). For an inverter pair holding
/// a state, pass the same VTC twice.
///
/// The returned value is the side of the largest square that fits between
/// the curve and the mirrored curve — the classic SRAM hold-SNM
/// definition (paper ref \[16\]).
///
/// Returns `None` — like [`noise_margins`] on a degenerate curve — when a
/// VTC cannot be inverted (NaN samples from a failed solve, or numerical
/// non-monotonicity leaving an output level with no bracketing interval).
pub fn butterfly_snm(vtc_a: &Vtc, vtc_b: &Vtc) -> Option<f64> {
    // Work along the diagonal coordinate u = (v_in + v_out)/√2: for each
    // sample of curve A, measure the diagonal gap to mirrored curve B and
    // track the largest square in each lobe.
    let interp =
        |vtc: &Vtc, x: f64| -> f64 { subvt_physics::math::interp1(&vtc.v_in, &vtc.v_out, x) };
    // Lobe 1: squares below curve A and above mirror of B.
    let mut best = 0.0f64;
    let samples = 400;
    let vdd = vtc_a.v_dd;
    for k in 0..=samples {
        let x = vdd * k as f64 / samples as f64;
        // Curve A: y = A(x). Mirrored B: y such that x = B(y) → y = B⁻¹(x);
        // with a monotone decreasing VTC the inverse is found by scanning.
        let ya = interp(vtc_a, x);
        let yb_inv = inverse_vtc(vtc_b, x)?;
        // Diagonal separation between the two curves at this x defines
        // the largest square anchored here.
        let gap = ya - yb_inv;
        // Square side: the maximal s with A(x+s) ≥ y+s style embedding —
        // use the standard diagonal-gap/√2… practical approximation:
        // side = gap/√2 when gap > 0 (upper lobe).
        if gap > 0.0 {
            best = best.max(largest_square(vtc_a, vtc_b, x)?);
        }
    }
    Some(best)
}

/// Largest square anchored with its lower-left corner at `(x, y_mirror)`
/// fitting under curve A and right of mirrored curve B. `None` when
/// curve B cannot be inverted.
fn largest_square(vtc_a: &Vtc, vtc_b: &Vtc, x: f64) -> Option<f64> {
    let interp = |vtc: &Vtc, v: f64| subvt_physics::math::interp1(&vtc.v_in, &vtc.v_out, v);
    // Binary search the square side.
    let mut lo = 0.0;
    let mut hi = vtc_a.v_dd;
    for _ in 0..40 {
        let s = 0.5 * (lo + hi);
        // Square with corners (x, y0), (x+s, y0+s) where y0 = B⁻¹(x)…
        let y0 = inverse_vtc(vtc_b, x)?;
        let fits = interp(vtc_a, x) >= y0 + s && interp(vtc_a, x + s) >= y0 + s && {
            // Right edge must stay left of mirrored B: B⁻¹(x+s) ≤ y0.
            let inv = inverse_vtc(vtc_b, x + s)?;
            inv <= y0 + 1e-12 || inv <= y0 + s
        };
        if fits {
            lo = s;
        } else {
            hi = s;
        }
    }
    Some(lo)
}

/// Inverse of a monotone-decreasing VTC: the input that produces output
/// `y` (clamped at the rails).
///
/// A sample landing exactly on `y` is attributed to the interval that
/// arrives at it (the sign-product test would match both neighbours), and
/// a `y` strictly inside the rail levels with *no* bracketing interval —
/// NaN samples from a failed solve, or non-monotone numerical noise
/// around the rails — returns `None` instead of silently answering with
/// the last input sample.
fn inverse_vtc(vtc: &Vtc, y: f64) -> Option<f64> {
    // v_out is decreasing in v_in; scan the samples for a bracket.
    let n = vtc.v_in.len();
    if y >= vtc.v_out[0] {
        return Some(vtc.v_in[0]);
    }
    if y <= vtc.v_out[n - 1] {
        return Some(vtc.v_in[n - 1]);
    }
    for i in 1..n {
        let (a, b) = (vtc.v_out[i - 1], vtc.v_out[i]);
        let (da, db) = (a - y, b - y);
        if da * db < 0.0 || (db == 0.0 && da != 0.0) {
            let f = (y - a) / (b - a);
            return Some(vtc.v_in[i - 1] + f * (vtc.v_in[i] - vtc.v_in[i - 1]));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverter::{CmosPair, Inverter};
    use subvt_physics::device::DeviceParams;
    use subvt_units::Volts;

    fn subvt_vtc() -> Vtc {
        let pair = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
        Inverter::new(pair).vtc(Volts::new(0.25), 201).unwrap()
    }

    #[test]
    fn margins_ordered_and_positive() {
        let vtc = subvt_vtc();
        let nm = noise_margins(&vtc).expect("gain reaches -1");
        assert!(nm.v_il < nm.v_ih, "V_IL {} < V_IH {}", nm.v_il, nm.v_ih);
        assert!(nm.v_ol < nm.v_oh);
        assert!(nm.nm_low > 0.0 && nm.nm_high > 0.0);
        // Sub-V_th inverter at 250 mV: SNM in the tens of mV.
        let snm = nm.snm();
        assert!(snm > 0.03 && snm < 0.125, "SNM = {snm}");
    }

    #[test]
    fn snm_grows_with_supply() {
        let pair = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
        let inv = Inverter::new(pair);
        let lo = noise_margins(&inv.vtc(Volts::new(0.20), 201).unwrap())
            .unwrap()
            .snm();
        let hi = noise_margins(&inv.vtc(Volts::new(0.30), 201).unwrap())
            .unwrap()
            .snm();
        assert!(hi > lo);
    }

    #[test]
    fn ideal_step_vtc_margins() {
        // Synthetic near-ideal VTC: slow rails with a steep transition;
        // gain=-1 points bracket the step.
        let v_in: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let v_out: Vec<f64> = v_in
            .iter()
            .map(|&x| 1.0 / (1.0 + ((x - 0.5) / 0.01).exp()))
            .collect();
        let vtc = Vtc {
            v_in,
            v_out,
            v_dd: 1.0,
        };
        let nm = noise_margins(&vtc).unwrap();
        assert!((nm.v_il - 0.44).abs() < 0.05);
        assert!((nm.v_ih - 0.56).abs() < 0.05);
        assert!(nm.snm() > 0.35);
    }

    #[test]
    fn no_margins_for_gainless_curve() {
        // A shallow linear "VTC" never reaches gain −1.
        let v_in: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let v_out: Vec<f64> = v_in.iter().map(|&x| 0.6 - 0.2 * x).collect();
        let vtc = Vtc {
            v_in,
            v_out,
            v_dd: 1.0,
        };
        assert!(noise_margins(&vtc).is_none());
    }

    #[test]
    fn butterfly_snm_positive_and_below_half_vdd() {
        let vtc = subvt_vtc();
        let snm = butterfly_snm(&vtc, &vtc).expect("clean VTC inverts");
        assert!(snm > 0.02, "butterfly SNM = {snm}");
        assert!(snm < 0.125, "butterfly SNM = {snm}");
    }

    #[test]
    fn butterfly_close_to_gain_based_for_inverter() {
        // The two definitions agree within a factor ~2 for a symmetric
        // inverter (they measure related but different geometry).
        let vtc = subvt_vtc();
        let g = noise_margins(&vtc).unwrap().snm();
        let b = butterfly_snm(&vtc, &vtc).unwrap();
        assert!(b > 0.4 * g && b < 2.5 * g, "gain {g} vs butterfly {b}");
    }

    #[test]
    fn noisy_vtc_is_an_error_not_a_rail() {
        // A NaN sample (failed solve at one sweep point) leaves interior
        // output levels with no bracketing interval. The old code fell
        // through to `v_in[n-1]`, silently treating the curve as pinned at
        // the low rail; now the whole butterfly measurement reports None.
        let vtc = Vtc {
            v_in: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            v_out: vec![0.9, 0.8, f64::NAN, 0.2, 0.1],
            v_dd: 1.0,
        };
        assert!(butterfly_snm(&vtc, &vtc).is_none());
    }

    #[test]
    fn exact_sample_inverse_is_attributed_once() {
        // 0.5 is hit exactly by the middle sample; both neighbouring
        // intervals used to satisfy the `<= 0` product test and the first
        // (leaving) interval won. The crossing belongs to the interval
        // that arrives at the level, so the inverse must interpolate
        // inside [0.25, 0.5] and land exactly on v_in = 0.5.
        let vtc = Vtc {
            v_in: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            v_out: vec![1.0, 0.9, 0.5, 0.1, 0.0],
            v_dd: 1.0,
        };
        let x = inverse_vtc(&vtc, 0.5).unwrap();
        assert!((x - 0.5).abs() < 1e-12, "inverse = {x}");
        // And a clean monotone curve still inverts everywhere strictly
        // inside the rails.
        for y in [0.05, 0.3, 0.7, 0.95] {
            assert!(inverse_vtc(&vtc, y).is_some(), "y = {y}");
        }
    }
}
