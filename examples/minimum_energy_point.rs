//! The minimum-energy point in detail: sweep the supply for the paper's
//! 30-inverter chain (α = 0.1), print the dynamic/leakage breakdown, the
//! energy-optimal V_min, and the V_min = K_Vmin·S_S relation (paper
//! §2.3.3–2.3.4, Fig. 6).
//!
//! ```text
//! cargo run --release -p subvt-exp --example minimum_energy_point
//! ```

use subvt_circuits::chain::InverterChain;
use subvt_circuits::inverter::CmosPair;
use subvt_physics::DeviceParams;
use subvt_units::Volts;

fn main() {
    let pair = CmosPair::balanced(DeviceParams::reference_90nm_nfet());
    let chain = InverterChain::paper_chain(pair);

    println!("V_dd sweep for a 30-inverter chain, alpha = 0.1 (90 nm device):\n");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>12}  {:>12}",
        "V_dd (mV)", "E_dyn (fJ)", "E_leak (fJ)", "E_tot (fJ)", "T_cycle"
    );
    println!("{}", "-".repeat(66));
    for mv in (140..=500).step_by(30) {
        let p = chain.energy_at(Volts::from_millivolts(mv as f64));
        println!(
            "{:>10}  {:>12.4}  {:>12.4}  {:>12.4}  {:>9.2} us",
            mv,
            p.dynamic.as_femtojoules(),
            p.leakage.as_femtojoules(),
            p.total().as_femtojoules(),
            p.t_cycle.get() * 1e6,
        );
    }

    let mep = chain.minimum_energy_point();
    println!(
        "\nV_min = {:.0} mV, E_min = {:.3} fJ/cycle",
        mep.v_min.as_millivolts(),
        mep.energy.as_femtojoules()
    );
    println!("K_Vmin = V_min/S_S = {:.2} decades", chain.k_vmin());

    // Activity dependence: busier circuits prefer lower V_min.
    println!("\nActivity dependence of V_min:");
    for alpha in [0.02, 0.05, 0.1, 0.2, 0.5] {
        let c = InverterChain::new(pair, 30, alpha);
        let m = c.minimum_energy_point();
        println!(
            "  alpha = {alpha:<5}  V_min = {:>4.0} mV   E = {:.3} fJ",
            m.v_min.as_millivolts(),
            m.energy.as_femtojoules()
        );
    }
}
