//! Quickstart: characterize the paper's reference device, then design
//! and compare both scaling strategies at the 32 nm node.
//!
//! ```text
//! cargo run --release -p subvt-exp --example quickstart
//! ```

use subvt_core::strategy::ScalingStrategy;
use subvt_core::{SubVthStrategy, SuperVthStrategy, TechNode};
use subvt_physics::DeviceParams;
use subvt_units::Volts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The compact device model: the paper's 90 nm-class NFET.
    let dev = DeviceParams::reference_90nm_nfet();
    let ch = dev.characterize();
    println!("== Reference 90 nm NFET ==");
    println!("  S_S       = {:.1}", ch.s_s);
    println!("  V_th,sat  = {:.0} mV", ch.v_th_sat.as_millivolts());
    println!("  I_off     = {:.1} pA/um", ch.i_off.as_picoamps());
    println!("  I_on      = {:.0} uA/um", ch.i_on.as_microamps());
    println!("  tau       = {:.2} ps", ch.tau.as_picoseconds());

    // 2. The same device operated in subthreshold (paper's 250 mV point).
    let sub = DeviceParams {
        v_dd: Volts::new(0.25),
        ..dev
    };
    let sub_ch = sub.characterize();
    println!("\n== Same device at V_dd = 250 mV ==");
    println!("  I_on/I_off = {:.0}", sub_ch.on_off_ratio());
    println!("  tau        = {:.1} ns", sub_ch.tau.as_nanoseconds());

    // 3. Both scaling strategies at 32 nm.
    println!("\n== 32 nm designs ==");
    for strategy in [
        Box::new(SuperVthStrategy::default()) as Box<dyn ScalingStrategy>,
        Box::new(SubVthStrategy::default()),
    ] {
        let d = strategy.design_node(TechNode::N32)?;
        println!(
            "  {:<10}  L_poly = {:>5.1} nm   S_S = {:>5.1} mV/dec   I_off = {:>5.0} pA/um",
            strategy.name(),
            d.nfet.geometry.l_poly.get(),
            d.nfet_chars.s_s.get(),
            d.nfet_chars.i_off.as_picoamps(),
        );
    }
    println!("\nThe proposed sub-Vth strategy holds S_S near 80 mV/dec (paper Fig. 9).");
    Ok(())
}
