//! Drive the circuit simulator from a classic SPICE deck: build the
//! device models with the scaling flows, then describe the circuit as
//! text — the workflow of a traditional SPICE user, on this stack.
//!
//! ```text
//! cargo run --release -p subvt-exp --example spice_deck
//! ```

use std::collections::HashMap;

use subvt_core::strategy::ScalingStrategy;
use subvt_core::{SuperVthStrategy, TechNode};
use subvt_spice::parser::parse_deck;
use subvt_spice::transient::{transient, Integrator, TransientSpec};
use subvt_spice::{dc_operating_point, dc_sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Device models from the 90 nm super-V_th design.
    let design = SuperVthStrategy::default().design_node(TechNode::N90)?;
    let mut models = HashMap::new();
    models.insert("nch".to_owned(), design.nfet.mos_model());
    models.insert("pch".to_owned(), design.pfet.mos_model());

    // A NAND2 gate at 250 mV, described as a plain SPICE deck.
    let deck = "\
* 2-input NAND at a 250 mV rail
VDD vdd 0 0.25
VA  a   0 0.25
VB  b   0 0.25
MP1 out a vdd pch W=2.4u
MP2 out b vdd pch W=2.4u
MN1 out a mid  nch W=1u
MN2 mid b 0    nch W=1u
CL  out 0 5f
";
    let net = parse_deck(deck, &models)?;
    let sol = dc_operating_point(&net)?;
    let out = net.find_node("out").expect("deck defines `out`");
    println!(
        "NAND(1,1) output: {:.1} mV (expect ~0)",
        sol.node_voltages[out] * 1e3
    );

    // Sweep input A with B held high: the deck is reusable data.
    let sweep: Vec<f64> = (0..=10).map(|k| 0.25 * k as f64 / 10.0).collect();
    let sols = dc_sweep(&net, "VA", &sweep)?;
    println!("\nVTC with B = high:");
    for (va, s) in sweep.iter().zip(&sols) {
        println!(
            "  V_A = {:>4.0} mV -> out = {:>5.1} mV",
            va * 1e3,
            s.node_voltages[out] * 1e3
        );
    }

    // And a transient: pulse A while B stays high.
    let deck_tran = deck.replace(
        "VA  a   0 0.25",
        "VA  a   0 PULSE(0 0.25 2u 0.2u 0.2u 6u 0)",
    );
    let net_tran = parse_deck(&deck_tran, &models)?;
    let res = transient(
        &net_tran,
        TransientSpec::with_steps(15.0e-6, 1500, Integrator::Trapezoidal),
    )?;
    let out_t = net_tran.find_node("out").expect("out");
    let final_v = res.voltages.last().unwrap()[out_t];
    println!(
        "\nTransient: out settles at {:.1} mV after the input pulse",
        final_v * 1e3
    );
    Ok(())
}
