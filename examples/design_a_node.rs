//! Design a technology node end to end: run both scaling flows for one
//! node, then evaluate the resulting devices at the circuit level (SNM,
//! FO1 delay, minimum-energy point).
//!
//! ```text
//! cargo run --release -p subvt-exp --example design_a_node -- 45nm
//! ```

use subvt_circuits::chain::InverterChain;
use subvt_circuits::delay::analytic_fo1_delay;
use subvt_circuits::inverter::Inverter;
use subvt_circuits::snm::noise_margins;
use subvt_core::strategy::ScalingStrategy;
use subvt_core::{NodeDesign, SubVthStrategy, SuperVthStrategy, TechNode};
use subvt_units::Volts;

fn parse_node(arg: Option<String>) -> TechNode {
    match arg.as_deref() {
        Some("90nm") | Some("90") => TechNode::N90,
        Some("65nm") | Some("65") => TechNode::N65,
        Some("32nm") | Some("32") => TechNode::N32,
        _ => TechNode::N45,
    }
}

fn report(d: &NodeDesign, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let pair = d.cmos_pair();
    let v = Volts::new(0.25);
    let vtc = Inverter::new(pair).vtc(v, 161)?;
    let snm = noise_margins(&vtc).map(|nm| nm.snm()).unwrap_or(f64::NAN);
    let tp = analytic_fo1_delay(&pair, v);
    let mep = InverterChain::paper_chain(pair).minimum_energy_point();

    println!("--- {label} @ {} ---", d.node);
    println!(
        "  device : L_poly {:.0}, T_ox {:.2}, N_sub {:.2e}, N_halo {:.2e}",
        d.nfet.geometry.l_poly,
        d.nfet.geometry.t_ox,
        d.nfet.n_sub.get(),
        d.nfet.n_sub.get() + d.nfet.n_p_halo.get(),
    );
    println!(
        "  S_S {:.1} | V_th,sat {:.0} mV | I_off {:.0} pA/um",
        d.nfet_chars.s_s,
        d.nfet_chars.v_th_sat.as_millivolts(),
        d.nfet_chars.i_off.as_picoamps(),
    );
    println!(
        "  circuit @250mV: SNM {:.1} mV | FO1 delay {:.1} ns",
        snm * 1e3,
        tp.as_nanoseconds(),
    );
    println!(
        "  30-inv chain: V_min {:.0} mV | E {:.3} fJ/cycle",
        mep.v_min.as_millivolts(),
        mep.energy.as_femtojoules(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node = parse_node(std::env::args().nth(1));
    println!("Designing {node} under both strategies…\n");
    let sup = SuperVthStrategy::default().design_node(node)?;
    let sub = SubVthStrategy::default().design_node(node)?;
    report(&sup, "super-Vth (performance-driven, paper Table 2)")?;
    report(&sub, "sub-Vth (proposed, paper Table 3)")?;
    Ok(())
}
