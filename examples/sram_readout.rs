//! Subthreshold SRAM margins — the structure the paper flags as most
//! exposed to S_S degradation (its §2.3.2 and ref [16]): hold and read
//! butterfly SNM of a 6T cell across scaling strategies, plus the
//! Monte-Carlo delay variability that motivates conservative sub-V_th
//! design.
//!
//! ```text
//! cargo run --release -p subvt-exp --example sram_readout
//! ```

use subvt_circuits::montecarlo::delay_variability;
use subvt_circuits::sram::SramCell;
use subvt_core::strategy::ScalingStrategy;
use subvt_core::{SubVthStrategy, SuperVthStrategy, TechNode};
use subvt_units::Volts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let v = Volts::new(0.25);
    println!("6T SRAM butterfly SNM at V_dd = 250 mV:\n");
    println!(
        "{:>6}  {:>18}  {:>18}",
        "node", "hold SNM (super)", "read SNM (super)"
    );
    println!("{}", "-".repeat(48));
    for node in TechNode::ALL {
        let d = SuperVthStrategy::default().design_node(node)?;
        let cell = SramCell::subthreshold_cell(d.cmos_pair());
        let hold = cell.hold_snm(v, 121)?;
        let read = cell.read_snm(v, 121)?;
        println!(
            "{:>6}  {:>15.1} mV  {:>15.1} mV",
            node.name(),
            hold * 1e3,
            read * 1e3
        );
    }

    let sub32 = SubVthStrategy::default().design_node(TechNode::N32)?;
    let cell = SramCell::subthreshold_cell(sub32.cmos_pair());
    println!(
        "\n32nm sub-Vth strategy: hold {:.1} mV, read {:.1} mV",
        cell.hold_snm(v, 121)? * 1e3,
        cell.read_snm(v, 121)? * 1e3
    );

    // Variability: why margins matter so much down here.
    println!("\nFO1 delay variability (Pelgrom V_th mismatch, 400 samples):");
    let d90 = SuperVthStrategy::default().design_node(TechNode::N90)?;
    for (label, vdd) in [("250 mV", 0.25), ("nominal", 1.2)] {
        let stats = delay_variability(&d90.cmos_pair(), Volts::new(vdd), 400, 2007);
        println!(
            "  V_dd = {label:<8}  sigma/mu = {:.1} %",
            stats.sigma_over_mu * 100.0
        );
    }
    println!("\nExponential V_th sensitivity makes sub-Vth delay variability explode —");
    println!("the motivation for the paper's tight S_S control.");
    Ok(())
}
