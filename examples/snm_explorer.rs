//! Explore static noise margins across supply voltage and scaling:
//! sweeps the inverter SNM from 150 mV to 400 mV for the 90 nm and
//! 32 nm super-V_th devices plus the 32 nm sub-V_th device — showing
//! how the proposed strategy recovers the lost margins.
//!
//! ```text
//! cargo run --release -p subvt-exp --example snm_explorer
//! ```

use subvt_circuits::inverter::Inverter;
use subvt_circuits::snm::{butterfly_snm, noise_margins};
use subvt_core::strategy::ScalingStrategy;
use subvt_core::{SubVthStrategy, SuperVthStrategy, TechNode};
use subvt_units::Volts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sup90 = SuperVthStrategy::default().design_node(TechNode::N90)?;
    let sup32 = SuperVthStrategy::default().design_node(TechNode::N32)?;
    let sub32 = SubVthStrategy::default().design_node(TechNode::N32)?;

    println!(
        "{:>9}  {:>14}  {:>14}  {:>14}",
        "V_dd (mV)", "90nm super", "32nm super", "32nm sub"
    );
    println!("{}", "-".repeat(58));
    for mv in (150..=400).step_by(25) {
        let v = Volts::from_millivolts(mv as f64);
        let mut cells = Vec::new();
        for d in [&sup90, &sup32, &sub32] {
            let snm = Inverter::new(d.cmos_pair())
                .vtc(v, 161)?
                .pipe(|vtc| noise_margins(&vtc).map(|nm| nm.snm()));
            cells.push(match snm {
                Some(s) => format!("{:.1} mV", s * 1e3),
                None => "none".to_owned(),
            });
        }
        println!(
            "{:>9}  {:>14}  {:>14}  {:>14}",
            mv, cells[0], cells[1], cells[2]
        );
    }

    // Butterfly view at the paper's 250 mV point.
    println!("\nButterfly (hold) SNM at 250 mV:");
    for (label, d) in [
        ("90nm super", &sup90),
        ("32nm super", &sup32),
        ("32nm sub", &sub32),
    ] {
        let vtc = Inverter::new(d.cmos_pair()).vtc(Volts::new(0.25), 161)?;
        let snm = butterfly_snm(&vtc, &vtc).expect("clean VTC inverts");
        println!("  {label:<11} {:.1} mV", snm * 1e3);
    }
    Ok(())
}

/// Tiny pipe helper for readable chains.
trait Pipe: Sized {
    fn pipe<T>(self, f: impl FnOnce(Self) -> T) -> T {
        f(self)
    }
}
impl<T> Pipe for T {}
