//! Integration suite for the `subvt-serve` daemon (DESIGN.md §8):
//! request dedup through the single-flight cache, typed overload
//! rejection, poison-request quarantine, graceful shutdown, the
//! HTTP metrics shim, and — via the real binary — warm restart from
//! the persistent cache with zero new misses.
//!
//! The metric assertions read the process-global tracer, so every
//! test takes the serial lock and works in counter deltas.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use subvt_serve::client::{http_get, Client};
use subvt_serve::{signal, Config, Server};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn counters() -> BTreeMap<String, u64> {
    subvt_engine::trace::global().snapshot().counters
}

fn delta(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>, name: &str) -> u64 {
    after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0)
}

fn start(config: Config) -> Server {
    signal::reset_for_tests();
    Server::start(config).expect("server start")
}

#[test]
fn n_identical_concurrent_requests_compute_exactly_once() {
    let _guard = serial();
    let server = start(Config {
        workers: 3,
        ..Config::default()
    });
    let addr = server.addr();
    let before = counters();

    const N: usize = 6;
    // Unusual bias points so no other test can have warmed this key.
    let params = r#"{"node":"ref90","v_ds":0.05,"v_gs":[0.111,0.222,0.333,0.444]}"#;
    let responses: Vec<_> = (0..N)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.call("idvg", params).expect("call")
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("thread"))
        .collect();

    let payload = responses[0].result.clone().expect("payload");
    for r in &responses {
        assert!(r.ok, "every duplicate must succeed: {}", r.raw);
        assert_eq!(
            r.result.as_deref(),
            Some(payload.as_str()),
            "duplicates must answer byte-identically"
        );
    }
    let after = counters();
    assert_eq!(
        delta(&before, &after, "serve.computed"),
        1,
        "N identical concurrent requests must compute exactly once"
    );
    let shared = delta(&before, &after, "serve.dedup.hits")
        + delta(&before, &after, "serve.dedup.coalesced");
    assert_eq!(shared, (N - 1) as u64, "the other N-1 must be deduped");

    server.shutdown();
    server.join().expect("join");
}

#[test]
fn overload_is_a_typed_rejection_not_a_hang() {
    let _guard = serial();
    let server = start(Config {
        workers: 1,
        queue_capacity: 1,
        ..Config::default()
    });
    let addr = server.addr();
    let before = counters();

    // Occupy the only worker...
    let occupant = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .call("sleep", r#"{"ms":800,"token":"overload-occupant"}"#)
            .expect("occupant call")
    });
    wait_for_gauge(addr, "serve.inflight", 1.0);
    // ...fill the queue...
    let queued = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .call("sleep", r#"{"ms":1,"token":"overload-queued"}"#)
            .expect("queued call")
    });
    wait_for_gauge(addr, "serve.queue.depth", 1.0);

    // ...and the next request must bounce immediately.
    let started = Instant::now();
    let mut client = Client::connect(addr).expect("connect");
    let rejected = client
        .call("fo1", r#"{"node":"ref90","v_dd":0.32}"#)
        .expect("rejected call");
    assert!(!rejected.ok);
    assert_eq!(rejected.error_code.as_deref(), Some("overloaded"));
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "overload rejection must not wait for the queue: {:?}",
        started.elapsed()
    );

    assert!(occupant.join().expect("occupant").ok);
    assert!(queued.join().expect("queued").ok);
    let after = counters();
    assert!(delta(&before, &after, "serve.rejected.overload") >= 1);

    server.shutdown();
    server.join().expect("join");
}

#[test]
fn poison_requests_are_quarantined_while_the_server_keeps_serving() {
    let _guard = serial();
    let server = start(Config {
        workers: 2,
        ..Config::default()
    });
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");

    let first = client
        .call("panic", r#"{"token":"poison-1"}"#)
        .expect("first poison");
    assert!(!first.ok);
    assert_eq!(first.error_code.as_deref(), Some("compute_panicked"));

    let second = client
        .call("panic", r#"{"token":"poison-1"}"#)
        .expect("second poison");
    assert!(!second.ok);
    assert_eq!(
        second.error_code.as_deref(),
        Some("quarantined"),
        "a repeated poison key must be refused without re-running"
    );

    // The worker that caught the panic must still serve real work.
    let alive = client
        .call("params", r#"{"node":"ref90"}"#)
        .expect("post-poison call");
    assert!(alive.ok, "server must keep serving after a poison request");

    server.shutdown();
    server.join().expect("join");
}

#[test]
fn graceful_shutdown_rejects_new_work_and_persists_the_cache() {
    let _guard = serial();
    let cache_path =
        std::env::temp_dir().join(format!("subvt-serve-shutdown-{}.jsonl", std::process::id()));
    std::fs::remove_file(&cache_path).ok();
    let server = start(Config {
        workers: 2,
        cache_path: Some(cache_path.clone()),
        ..Config::default()
    });
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let warm = client
        .call("fo1", r#"{"node":"ref90","v_dd":0.33}"#)
        .expect("warm call");
    assert!(warm.ok);

    let ack = client.call("shutdown", "{}").expect("shutdown call");
    assert!(ack.ok, "shutdown must acknowledge");

    // Once the accept loop closes admission, compute methods get a
    // typed shutting_down; admin methods keep answering inline.
    let rejected = wait_until(Duration::from_secs(3), || {
        let r = client.call("fo1", r#"{"node":"ref90","v_dd":0.34}"#).ok()?;
        (!r.ok).then_some(r)
    });
    assert_eq!(rejected.error_code.as_deref(), Some("shutting_down"));

    server.join().expect("join");
    assert!(
        cache_path.exists(),
        "graceful shutdown must compact the cache to disk"
    );
    std::fs::remove_file(&cache_path).ok();
    signal::reset_for_tests();
}

#[test]
fn http_shim_serves_healthz_and_metrics() {
    let _guard = serial();
    let server = start(Config::default());
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    assert!(client.call("ping", "{}").expect("ping").ok);

    assert_eq!(http_get(addr, "/healthz").expect("healthz"), "ok\n");
    let metrics = http_get(addr, "/metrics").expect("metrics");
    assert!(
        metrics.contains("subvt_gauge{name=\"serve.queue.depth\"}"),
        "metrics must export the queue-depth gauge:\n{metrics}"
    );
    assert!(
        metrics.contains("subvt_counter"),
        "metrics must export counters"
    );
    assert!(http_get(addr, "/nope").is_err(), "unknown paths are 404");

    server.shutdown();
    server.join().expect("join");
}

/// Spawned-binary test: a warm restart must answer from the persisted
/// cache with zero new misses in the `serve.resp` namespace.
#[test]
fn warm_restart_answers_from_cache_with_zero_new_misses() {
    let _guard = serial();
    let cache_path =
        std::env::temp_dir().join(format!("subvt-serve-warm-{}.jsonl", std::process::id()));
    std::fs::remove_file(&cache_path).ok();
    let params = r#"{"node":"ref90","v_dd":0.29}"#;

    // Cold run: compute and persist.
    {
        let mut child = spawn_daemon(&cache_path);
        let mut client =
            Client::connect_ready(child.addr.as_str(), Duration::from_secs(10)).expect("ready");
        let cold = client.call("fo1", params).expect("cold call");
        assert!(cold.ok);
        assert_eq!(cold.cached.as_deref(), Some("computed"));
        client.call("shutdown", "{}").expect("shutdown");
        child.wait_success();
    }

    // Warm run: same request must be a disk hit, not a recompute.
    {
        let mut child = spawn_daemon(&cache_path);
        let mut client =
            Client::connect_ready(child.addr.as_str(), Duration::from_secs(10)).expect("ready");
        let warm = client.call("fo1", params).expect("warm call");
        assert!(warm.ok);
        assert_eq!(
            warm.cached.as_deref(),
            Some("hit"),
            "restart must answer from the persisted cache: {}",
            warm.raw
        );
        let metrics = client.call("metrics", "{}").expect("metrics");
        let json = metrics.result_json().expect("metrics json");
        let counter = |name: &str| -> f64 {
            json.get("counters")
                .and_then(|c| c.get(name))
                .and_then(subvt_exp::tracefmt::Json::as_f64)
                .unwrap_or(0.0)
        };
        assert_eq!(
            counter("cache.serve.resp.miss"),
            0.0,
            "warm restart must introduce zero new response-cache misses"
        );
        assert_eq!(counter("serve.computed"), 0.0, "nothing may recompute");
        client.call("shutdown", "{}").expect("shutdown");
        child.wait_success();
    }
    std::fs::remove_file(&cache_path).ok();
}

#[test]
fn http_shim_error_paths_answer_typed_statuses_without_hanging() {
    let _guard = serial();
    let server = start(Config {
        http_timeout: Duration::from_millis(400),
        ..Config::default()
    });
    let addr = server.addr();

    let resp = raw_http(addr, b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "non-GET must 405: {resp}");
    assert!(
        resp.contains("Allow: GET, HEAD"),
        "405 must advertise: {resp}"
    );

    let resp = raw_http(addr, b"GET /nope HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404"), "unknown path: {resp}");

    let resp = raw_http(addr, b"HEAD /healthz HTTP/1.1\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "HEAD must work: {resp}");
    assert!(
        resp.ends_with("\r\n\r\n"),
        "HEAD must carry no body: {resp:?}"
    );

    let mut long = b"GET /".to_vec();
    long.resize(long.len() + 9000, b'a');
    long.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let resp = raw_http(addr, &long);
    assert!(
        resp.starts_with("HTTP/1.1 431"),
        "over-long request line must 431: {resp}"
    );

    // A half-open connection (nothing ever sent) must be closed by the
    // server's read timeout — never parked forever.
    let started = Instant::now();
    let mut idle = std::net::TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut buf = [0u8; 16];
    let n = std::io::Read::read(&mut idle, &mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server must close a half-open connection silently");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "half-open close must honor http_timeout: {:?}",
        started.elapsed()
    );

    server.shutdown();
    server.join().expect("join");
}

/// Spawned-binary test for the tentpole: wire trace context makes one
/// parent-linked tree. The test acts as the client (high span-id range,
/// `client.request` spans, trace context on the wire), the daemon
/// writes its Chrome trace and access log on shutdown, and the
/// tracefmt stitcher must re-parent every server request span onto the
/// client span that issued it.
#[test]
fn wire_trace_context_stitches_into_one_parent_linked_tree() {
    use subvt_exp::tracefmt;

    let _guard = serial();
    let dir = std::env::temp_dir().join(format!("subvt-serve-stitch-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let access_path = dir.join("access.jsonl");
    let trace_path = dir.join("server-trace.json");

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_subvt-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--slo",
            "vtc=p99:5000",
            "--access-log",
            access_path.to_str().expect("utf8"),
            "--trace",
            trace_path.to_str().expect("utf8"),
            "--trace-format",
            "chrome",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn subvt-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let banner = BufReader::new(stdout)
        .lines()
        .next()
        .expect("banner")
        .expect("banner read");
    let addr = banner.rsplit(' ').next().expect("addr").to_owned();
    let mut daemon = Daemon { child, addr };

    // Client side: reserve a disjoint span-id range, then issue traced
    // requests under client.request spans.
    subvt_engine::trace::raise_id_floor(1 << 32);
    let mut client =
        Client::connect_ready(daemon.addr.as_str(), Duration::from_secs(10)).expect("ready");
    let calls = [
        ("vtc", r#"{"node":"ref90","v_dd":0.31,"points":11}"#),
        ("snm", r#"{"node":"ref90","v_dd":0.31}"#),
        ("vtc", r#"{"node":"ref90","v_dd":0.31,"points":11}"#),
    ];
    let mut client_span_ids = Vec::new();
    for (i, (method, params)) in calls.iter().enumerate() {
        let trace_id = format!("it-stitch-{i}");
        let mut span = subvt_engine::trace::global().span("client.request");
        span.set_attr("method", *method);
        span.set_attr("trace_id", trace_id.as_str());
        client_span_ids.push(span.id());
        let r = client
            .call_traced(method, params, Some((&trace_id, span.id())))
            .expect("traced call");
        assert!(r.ok, "traced request must succeed: {}", r.raw);
    }
    client.call("shutdown", "{}").expect("shutdown");
    daemon.wait_success();

    // Every access-log trace_id must resolve to a request span in the
    // daemon's emitted Chrome trace.
    let access_text = std::fs::read_to_string(&access_path).expect("access log");
    let records = tracefmt::parse_access_log(&access_text).expect("access log parses");
    assert_eq!(records.len(), calls.len(), "one line per compute request");
    let server_text = std::fs::read_to_string(&trace_path).expect("server trace");
    let events = tracefmt::parse_chrome(&server_text).expect("server trace parses");
    let server = tracefmt::trace_from_chrome(&events);
    for rec in &records {
        let span = server
            .spans
            .iter()
            .find(|s| s.id == rec.span)
            .unwrap_or_else(|| panic!("access-log span {} not in trace", rec.span));
        assert_eq!(
            span.attr_str("trace_id"),
            Some(rec.trace_id.as_str()),
            "access-log trace_id must match its span"
        );
    }

    // Build the client-side trace file from this process's tracer,
    // keeping only this test's spans (the suite shares the tracer).
    let mut client_trace = tracefmt::TraceFile::default();
    let snap = subvt_engine::trace::global().snapshot();
    for s in &snap.spans {
        if client_span_ids.contains(&s.id) {
            client_trace.spans.push(tracefmt::TraceSpan {
                id: s.id,
                parent: None,
                name: s.name.clone(),
                start_us: s.start_us,
                dur_us: s.dur_us,
                worker: s.worker,
                attrs: Vec::new(),
            });
        }
    }
    assert_eq!(client_trace.spans.len(), calls.len());

    let stitched = tracefmt::stitch(&client_trace, &server).expect("stitch");
    tracefmt::validate(&stitched).expect("stitched trace validates");
    for rec in &records {
        let req = stitched
            .spans
            .iter()
            .find(|s| s.id == rec.span)
            .expect("request span survives stitching");
        let call_idx: usize = rec
            .trace_id
            .strip_prefix("it-stitch-")
            .and_then(|n| n.parse().ok())
            .expect("wire trace_id round-trips into the access log");
        let expect_parent = client_span_ids[call_idx];
        assert_eq!(
            req.parent,
            Some(expect_parent),
            "server request span must parent onto its client span"
        );
        assert!(
            req.worker >= tracefmt::STITCH_SERVER_LANE_BASE,
            "server spans move to the server lane block"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------- helpers

/// Sends raw bytes, half-closes the write side, and returns everything
/// the server answers before closing.
fn raw_http(addr: std::net::SocketAddr, request: &[u8]) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.write_all(request).expect("write");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    String::from_utf8_lossy(&buf).into_owned()
}

struct Daemon {
    child: std::process::Child,
    addr: String,
}

impl Daemon {
    fn wait_success(&mut self) {
        let status = self.child.wait().expect("daemon wait");
        assert!(status.success(), "daemon must exit 0, got {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(cache_path: &std::path::Path) -> Daemon {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_subvt-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--cache",
            cache_path.to_str().expect("utf8 path"),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn subvt-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon banner")
        .expect("daemon banner read");
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_owned();
    assert!(
        banner.starts_with("subvt-serve listening on"),
        "unexpected banner: {banner}"
    );
    Daemon { child, addr }
}

fn wait_for_gauge(addr: std::net::SocketAddr, name: &str, want: f64) {
    let mut client = Client::connect(addr).expect("connect");
    wait_until(Duration::from_secs(5), || {
        let r = client.call("metrics", "{}").ok()?;
        let json = r.result_json().ok()?;
        let got = json
            .get("gauges")
            .and_then(|g| g.get(name))
            .and_then(subvt_exp::tracefmt::Json::as_f64)
            .unwrap_or(0.0);
        (got >= want).then_some(())
    });
}

fn wait_until<T>(timeout: Duration, mut probe: impl FnMut() -> Option<T>) -> T {
    let started = Instant::now();
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(
            started.elapsed() < timeout,
            "condition not met within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
