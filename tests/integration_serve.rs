//! Integration suite for the `subvt-serve` daemon (DESIGN.md §8):
//! request dedup through the single-flight cache, typed overload
//! rejection, poison-request quarantine, graceful shutdown, the
//! HTTP metrics shim, and — via the real binary — warm restart from
//! the persistent cache with zero new misses.
//!
//! The metric assertions read the process-global tracer, so every
//! test takes the serial lock and works in counter deltas.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use subvt_serve::client::{http_get, Client};
use subvt_serve::{signal, Config, Server};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn counters() -> BTreeMap<String, u64> {
    subvt_engine::trace::global().snapshot().counters
}

fn delta(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>, name: &str) -> u64 {
    after.get(name).copied().unwrap_or(0) - before.get(name).copied().unwrap_or(0)
}

fn start(config: Config) -> Server {
    signal::reset_for_tests();
    Server::start(config).expect("server start")
}

#[test]
fn n_identical_concurrent_requests_compute_exactly_once() {
    let _guard = serial();
    let server = start(Config {
        workers: 3,
        ..Config::default()
    });
    let addr = server.addr();
    let before = counters();

    const N: usize = 6;
    // Unusual bias points so no other test can have warmed this key.
    let params = r#"{"node":"ref90","v_ds":0.05,"v_gs":[0.111,0.222,0.333,0.444]}"#;
    let responses: Vec<_> = (0..N)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.call("idvg", params).expect("call")
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("thread"))
        .collect();

    let payload = responses[0].result.clone().expect("payload");
    for r in &responses {
        assert!(r.ok, "every duplicate must succeed: {}", r.raw);
        assert_eq!(
            r.result.as_deref(),
            Some(payload.as_str()),
            "duplicates must answer byte-identically"
        );
    }
    let after = counters();
    assert_eq!(
        delta(&before, &after, "serve.computed"),
        1,
        "N identical concurrent requests must compute exactly once"
    );
    let shared = delta(&before, &after, "serve.dedup.hits")
        + delta(&before, &after, "serve.dedup.coalesced");
    assert_eq!(shared, (N - 1) as u64, "the other N-1 must be deduped");

    server.shutdown();
    server.join().expect("join");
}

#[test]
fn overload_is_a_typed_rejection_not_a_hang() {
    let _guard = serial();
    let server = start(Config {
        workers: 1,
        queue_capacity: 1,
        ..Config::default()
    });
    let addr = server.addr();
    let before = counters();

    // Occupy the only worker...
    let occupant = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .call("sleep", r#"{"ms":800,"token":"overload-occupant"}"#)
            .expect("occupant call")
    });
    wait_for_gauge(addr, "serve.inflight", 1.0);
    // ...fill the queue...
    let queued = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .call("sleep", r#"{"ms":1,"token":"overload-queued"}"#)
            .expect("queued call")
    });
    wait_for_gauge(addr, "serve.queue.depth", 1.0);

    // ...and the next request must bounce immediately.
    let started = Instant::now();
    let mut client = Client::connect(addr).expect("connect");
    let rejected = client
        .call("fo1", r#"{"node":"ref90","v_dd":0.32}"#)
        .expect("rejected call");
    assert!(!rejected.ok);
    assert_eq!(rejected.error_code.as_deref(), Some("overloaded"));
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "overload rejection must not wait for the queue: {:?}",
        started.elapsed()
    );

    assert!(occupant.join().expect("occupant").ok);
    assert!(queued.join().expect("queued").ok);
    let after = counters();
    assert!(delta(&before, &after, "serve.rejected.overload") >= 1);

    server.shutdown();
    server.join().expect("join");
}

#[test]
fn poison_requests_are_quarantined_while_the_server_keeps_serving() {
    let _guard = serial();
    let server = start(Config {
        workers: 2,
        ..Config::default()
    });
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");

    let first = client
        .call("panic", r#"{"token":"poison-1"}"#)
        .expect("first poison");
    assert!(!first.ok);
    assert_eq!(first.error_code.as_deref(), Some("compute_panicked"));

    let second = client
        .call("panic", r#"{"token":"poison-1"}"#)
        .expect("second poison");
    assert!(!second.ok);
    assert_eq!(
        second.error_code.as_deref(),
        Some("quarantined"),
        "a repeated poison key must be refused without re-running"
    );

    // The worker that caught the panic must still serve real work.
    let alive = client
        .call("params", r#"{"node":"ref90"}"#)
        .expect("post-poison call");
    assert!(alive.ok, "server must keep serving after a poison request");

    server.shutdown();
    server.join().expect("join");
}

#[test]
fn graceful_shutdown_rejects_new_work_and_persists_the_cache() {
    let _guard = serial();
    let cache_path =
        std::env::temp_dir().join(format!("subvt-serve-shutdown-{}.jsonl", std::process::id()));
    std::fs::remove_file(&cache_path).ok();
    let server = start(Config {
        workers: 2,
        cache_path: Some(cache_path.clone()),
        ..Config::default()
    });
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let warm = client
        .call("fo1", r#"{"node":"ref90","v_dd":0.33}"#)
        .expect("warm call");
    assert!(warm.ok);

    let ack = client.call("shutdown", "{}").expect("shutdown call");
    assert!(ack.ok, "shutdown must acknowledge");

    // Once the accept loop closes admission, compute methods get a
    // typed shutting_down; admin methods keep answering inline.
    let rejected = wait_until(Duration::from_secs(3), || {
        let r = client.call("fo1", r#"{"node":"ref90","v_dd":0.34}"#).ok()?;
        (!r.ok).then_some(r)
    });
    assert_eq!(rejected.error_code.as_deref(), Some("shutting_down"));

    server.join().expect("join");
    assert!(
        cache_path.exists(),
        "graceful shutdown must compact the cache to disk"
    );
    std::fs::remove_file(&cache_path).ok();
    signal::reset_for_tests();
}

#[test]
fn http_shim_serves_healthz_and_metrics() {
    let _guard = serial();
    let server = start(Config::default());
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    assert!(client.call("ping", "{}").expect("ping").ok);

    assert_eq!(http_get(addr, "/healthz").expect("healthz"), "ok\n");
    let metrics = http_get(addr, "/metrics").expect("metrics");
    assert!(
        metrics.contains("subvt_gauge{name=\"serve.queue.depth\"}"),
        "metrics must export the queue-depth gauge:\n{metrics}"
    );
    assert!(
        metrics.contains("subvt_counter"),
        "metrics must export counters"
    );
    assert!(http_get(addr, "/nope").is_err(), "unknown paths are 404");

    server.shutdown();
    server.join().expect("join");
}

/// Spawned-binary test: a warm restart must answer from the persisted
/// cache with zero new misses in the `serve.resp` namespace.
#[test]
fn warm_restart_answers_from_cache_with_zero_new_misses() {
    let _guard = serial();
    let cache_path =
        std::env::temp_dir().join(format!("subvt-serve-warm-{}.jsonl", std::process::id()));
    std::fs::remove_file(&cache_path).ok();
    let params = r#"{"node":"ref90","v_dd":0.29}"#;

    // Cold run: compute and persist.
    {
        let mut child = spawn_daemon(&cache_path);
        let mut client =
            Client::connect_ready(child.addr.as_str(), Duration::from_secs(10)).expect("ready");
        let cold = client.call("fo1", params).expect("cold call");
        assert!(cold.ok);
        assert_eq!(cold.cached.as_deref(), Some("computed"));
        client.call("shutdown", "{}").expect("shutdown");
        child.wait_success();
    }

    // Warm run: same request must be a disk hit, not a recompute.
    {
        let mut child = spawn_daemon(&cache_path);
        let mut client =
            Client::connect_ready(child.addr.as_str(), Duration::from_secs(10)).expect("ready");
        let warm = client.call("fo1", params).expect("warm call");
        assert!(warm.ok);
        assert_eq!(
            warm.cached.as_deref(),
            Some("hit"),
            "restart must answer from the persisted cache: {}",
            warm.raw
        );
        let metrics = client.call("metrics", "{}").expect("metrics");
        let json = metrics.result_json().expect("metrics json");
        let counter = |name: &str| -> f64 {
            json.get("counters")
                .and_then(|c| c.get(name))
                .and_then(subvt_exp::tracefmt::Json::as_f64)
                .unwrap_or(0.0)
        };
        assert_eq!(
            counter("cache.serve.resp.miss"),
            0.0,
            "warm restart must introduce zero new response-cache misses"
        );
        assert_eq!(counter("serve.computed"), 0.0, "nothing may recompute");
        client.call("shutdown", "{}").expect("shutdown");
        child.wait_success();
    }
    std::fs::remove_file(&cache_path).ok();
}

// ---------------------------------------------------------------- helpers

struct Daemon {
    child: std::process::Child,
    addr: String,
}

impl Daemon {
    fn wait_success(&mut self) {
        let status = self.child.wait().expect("daemon wait");
        assert!(status.success(), "daemon must exit 0, got {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(cache_path: &std::path::Path) -> Daemon {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_subvt-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--cache",
            cache_path.to_str().expect("utf8 path"),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn subvt-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon banner")
        .expect("daemon banner read");
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_owned();
    assert!(
        banner.starts_with("subvt-serve listening on"),
        "unexpected banner: {banner}"
    );
    Daemon { child, addr }
}

fn wait_for_gauge(addr: std::net::SocketAddr, name: &str, want: f64) {
    let mut client = Client::connect(addr).expect("connect");
    wait_until(Duration::from_secs(5), || {
        let r = client.call("metrics", "{}").ok()?;
        let json = r.result_json().ok()?;
        let got = json
            .get("gauges")
            .and_then(|g| g.get(name))
            .and_then(subvt_exp::tracefmt::Json::as_f64)
            .unwrap_or(0.0);
        (got >= want).then_some(())
    });
}

fn wait_until<T>(timeout: Duration, mut probe: impl FnMut() -> Option<T>) -> T {
    let started = Instant::now();
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(
            started.elapsed() < timeout,
            "condition not met within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
