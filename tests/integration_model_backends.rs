//! Backend-parity tests for the [`subvt_model::DeviceModel`] trait: the
//! analytic compact model and the TCAD-backed models must agree on the
//! paper's reference device.
//!
//! The TCAD backends run at coarse mesh density so the whole file stays
//! in the few-second range; the single 2-D anchor sweep is shared by
//! every test through the engine's `tcad.extract` cache.

use subvt_model::DeviceModel;
use subvt_physics::device::{DeviceKind, DeviceParams};
use subvt_tcad::model::{TCAD_COARSE, TCAD_COARSE_DIRECT};

fn reference() -> DeviceParams {
    DeviceParams::reference_90nm_nfet()
}

#[test]
fn anchored_backend_matches_analytic_on_reference_device() {
    let dev = reference();
    let base = subvt_model::analytic()
        .characterize(&dev)
        .expect("analytic");
    let tcad = TCAD_COARSE.characterize(&dev).expect("tcad anchored");

    let ss_rel = (tcad.s_s.get() - base.s_s.get()).abs() / base.s_s.get();
    assert!(
        ss_rel < 0.10,
        "S_S: tcad {:.1} vs analytic {:.1} mV/dec ({:.1} % apart)",
        tcad.s_s.get(),
        base.s_s.get(),
        ss_rel * 100.0
    );

    let ioff_decades = (tcad.i_off.get() / base.i_off.get()).log10().abs();
    assert!(
        ioff_decades < 0.5,
        "I_off: tcad {:e} vs analytic {:e} ({ioff_decades:.2} decades apart)",
        tcad.i_off.get(),
        base.i_off.get()
    );
}

#[test]
fn direct_backend_matches_analytic_on_reference_device() {
    let dev = reference();
    let base = subvt_model::analytic()
        .characterize(&dev)
        .expect("analytic");
    let tcad = TCAD_COARSE_DIRECT.characterize(&dev).expect("tcad direct");

    let ss_rel = (tcad.s_s.get() - base.s_s.get()).abs() / base.s_s.get();
    assert!(
        ss_rel < 0.10,
        "S_S: tcad {:.1} vs analytic {:.1} mV/dec",
        tcad.s_s.get(),
        base.s_s.get()
    );

    // The direct backend's deck correction is anchored at this very
    // device, so its off-current must land on the analytic value.
    let ioff_decades = (tcad.i_off.get() / base.i_off.get()).log10().abs();
    assert!(
        ioff_decades < 0.5,
        "I_off: tcad {:e} vs analytic {:e} ({ioff_decades:.2} decades apart)",
        tcad.i_off.get(),
        base.i_off.get()
    );

    let vth_diff = (tcad.v_th_sat.as_volts() - base.v_th_sat.as_volts()).abs();
    assert!(
        vth_diff < 0.05,
        "V_th,sat: tcad {:.3} vs analytic {:.3} V",
        tcad.v_th_sat.as_volts(),
        base.v_th_sat.as_volts()
    );
}

#[test]
fn tcad_backend_corrects_both_polarities_with_one_ratio() {
    // The 2-D solver only simulates electrons; the model derives its
    // swing correction in the NFET frame and applies the same ratio to
    // either polarity's own analytic base — so the NFET/PFET asymmetry
    // of the compact model must survive, while the relative swing
    // correction is polarity-independent.
    let nfet = reference();
    let mut pfet = nfet;
    pfet.kind = DeviceKind::Pfet;
    let base_n = subvt_model::analytic()
        .characterize(&nfet)
        .expect("nfet base");
    let base_p = subvt_model::analytic()
        .characterize(&pfet)
        .expect("pfet base");
    let chn = TCAD_COARSE.characterize(&nfet).expect("nfet");
    let chp = TCAD_COARSE.characterize(&pfet).expect("pfet");
    let ratio_n = chn.s_s.get() / base_n.s_s.get();
    let ratio_p = chp.s_s.get() / base_p.s_s.get();
    assert!(
        (ratio_n - ratio_p).abs() < 1e-12,
        "swing correction must be polarity-independent: {ratio_n} vs {ratio_p}"
    );
}

#[test]
fn second_characterization_is_served_from_cache() {
    let cache = subvt_engine::global_cache();
    let dev = reference();
    let _ = TCAD_COARSE_DIRECT.characterize(&dev).expect("first");
    let before = cache.stats().misses;
    let _ = TCAD_COARSE_DIRECT.characterize(&dev).expect("second");
    assert_eq!(
        cache.stats().misses,
        before,
        "repeat characterization must not recompute"
    );
}

#[test]
fn degenerate_tcad_sweeps_surface_typed_errors() {
    use subvt_tcad::extract::{id_vd, id_vg};
    use subvt_tcad::{DeviceSimulator, TcadError};
    use subvt_tcad::{MeshDensity, Mosfet2d};

    let dev = Mosfet2d::build(&reference(), MeshDensity::Coarse);
    let mut sim = DeviceSimulator::new(dev).expect("equilibrium");
    // Zero-length, negative, and non-finite sweep specs must come back
    // as typed errors, not panics or empty curves.
    for (v_max, step) in [
        (0.0, 0.05),
        (1.2, 0.0),
        (1.2, -0.1),
        (f64::NAN, 0.05),
        (1.2, f64::INFINITY),
    ] {
        assert!(
            matches!(
                id_vg(&mut sim, 0.05, v_max, step),
                Err(TcadError::InvalidSweep { .. })
            ),
            "id_vg(v_max={v_max}, step={step}) must be InvalidSweep"
        );
        assert!(
            matches!(
                id_vd(&mut sim, 0.3, v_max, step),
                Err(TcadError::InvalidSweep { .. })
            ),
            "id_vd(v_max={v_max}, step={step}) must be InvalidSweep"
        );
    }
    // The simulator survives the rejected sweeps: a sane one still runs.
    assert!(id_vg(&mut sim, 0.05, 0.2, 0.1).is_ok());
}

#[test]
fn bias_far_outside_gummel_basin_is_an_error_not_a_panic() {
    use subvt_tcad::DeviceSimulator;
    use subvt_tcad::{MeshDensity, Mosfet2d};

    let dev = Mosfet2d::build(&reference(), MeshDensity::Coarse);
    let mut sim = DeviceSimulator::new(dev).expect("equilibrium");
    // A 100 V gate step is far outside the Gummel convergence basin even
    // after the recovery ladder (damping, bias substepping); the solver
    // must surface a typed error rather than panic or loop forever.
    let absurd = sim.set_bias(100.0, 100.0);
    assert!(absurd.is_err(), "100 V bias must not converge silently");
    // The ladder restored the pre-call state: normal operation resumes.
    sim.set_bias(0.05, 0.05).expect("small bias after recovery");
}
