//! Crash-semantics suite for the sweep fleet (`repro fleet`): a
//! 3-worker fleet with one injected SIGKILL must exit 0 and produce
//! output and a compacted cache byte-identical to the single-process
//! run, with the reclaim counters and quarantined tail visible in the
//! merged manifest — and a dead lock holder must never leave a later
//! run read-only.

use std::path::PathBuf;
use std::process::{Command, Output};

use subvt_exp::tracefmt;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("repro binary spawns");
    assert!(
        out.status.code().is_some(),
        "repro must exit, not die on a signal"
    );
    out
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("subvt-fleet-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const IDS: [&str; 3] = ["table2", "fig3", "fig4"];

#[test]
fn fleet_with_injected_sigkill_matches_single_process_byte_for_byte() {
    let dir = tmpdir("crash");

    // Reference: the plain single-process run.
    let single_cache = dir.join("single.jsonl");
    let single = run_ok(
        repro()
            .arg("--csv")
            .arg("--cache")
            .arg(&single_cache)
            .args(IDS),
    );
    assert_eq!(single.status.code(), Some(0));
    assert!(single_cache.exists());

    // Cold 3-worker fleet with exactly one injected SIGKILL: the first
    // worker to finish an experiment tears its segment tail and dies.
    let fleet_cache = dir.join("fleet.jsonl");
    let manifest_path = dir.join("fleet.json");
    let marker = dir.join("crash.marker");
    let cold = run_ok(
        repro()
            .env("SUBVT_FLEET_CRASH_ONCE", &marker)
            .arg("fleet")
            .arg("--workers")
            .arg("3")
            .arg("--csv")
            .arg("--cache")
            .arg(&fleet_cache)
            .arg("--manifest")
            .arg(&manifest_path)
            .args(IDS),
    );
    let stderr = String::from_utf8(cold.stderr.clone()).unwrap();
    assert!(marker.exists(), "the crash hook must have fired\n{stderr}");
    assert!(stderr.contains("injecting SIGKILL crash"), "{stderr}");
    assert!(stderr.contains("died (signal 9)"), "{stderr}");
    assert_eq!(
        cold.status.code(),
        Some(0),
        "a SIGKILL'd worker must be re-run, not fail the fleet\n{stderr}"
    );

    // (a) Merged stdout is byte-identical to the single-process run.
    assert_eq!(
        cold.stdout, single.stdout,
        "fleet output must be byte-identical to the single-process run"
    );
    // (b) The compacted cache is byte-identical too.
    assert_eq!(
        std::fs::read(&fleet_cache).unwrap(),
        std::fs::read(&single_cache).unwrap(),
        "fleet cache must compact to the single-process file"
    );
    // ...and nothing is left behind in the segment directory.
    let seg_dir = subvt_engine::cache::seg::segment_dir(&fleet_cache);
    assert!(!seg_dir.exists(), "clean shutdown retires the segment dir");

    // (c) The merged manifest carries the crash evidence: a restart,
    // the reclaimed lease, and the quarantined torn tail.
    let manifest_text = std::fs::read_to_string(&manifest_path).unwrap();
    let manifest = tracefmt::parse_json(manifest_text.trim()).expect("fleet manifest parses");
    let fleet = manifest.get("fleet").expect("manifest has a fleet block");
    let num = |name: &str| {
        fleet
            .get(name)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("fleet.{name} missing in {manifest_text}"))
    };
    assert!(num("restarts") >= 1, "the injected kill must count");
    assert_eq!(num("shards_failed"), 0);
    assert!(
        num("lease_reclaimed") >= 1,
        "the re-run worker must reclaim its dead predecessor's lease"
    );
    assert!(
        num("tail_quarantined") >= 1,
        "the torn segment tail must be quarantined, not dropped silently"
    );
    let workers = manifest
        .get("workers")
        .and_then(|w| w.as_arr())
        .expect("manifest embeds worker manifests");
    assert!(!workers.is_empty());
    // Worker manifests are full v2 manifests in their own right.
    for w in workers {
        assert_eq!(w.get("v").and_then(|v| v.as_u64()), Some(2));
    }

    // Warm re-run (no crash): pure cache hits, same bytes, cache
    // untouched.
    let before = std::fs::read(&fleet_cache).unwrap();
    let warm = run_ok(
        repro()
            .arg("fleet")
            .arg("--workers")
            .arg("3")
            .arg("--csv")
            .arg("--cache")
            .arg(&fleet_cache)
            .args(IDS),
    );
    assert_eq!(warm.status.code(), Some(0));
    assert_eq!(warm.stdout, single.stdout, "warm fleet output must match");
    assert_eq!(
        std::fs::read(&fleet_cache).unwrap(),
        before,
        "a pure-hit fleet re-run must not change the cache file"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_single_worker_degenerates_to_the_plain_run() {
    let dir = tmpdir("solo");
    let plain = run_ok(repro().arg("--csv").args(IDS));
    assert_eq!(plain.status.code(), Some(0));
    let fleet = run_ok(
        repro()
            .arg("fleet")
            .arg("--workers")
            .arg("1")
            .arg("--csv")
            .args(IDS),
    );
    assert_eq!(fleet.status.code(), Some(0));
    assert_eq!(
        fleet.stdout, plain.stdout,
        "--workers 1 must reproduce the plain run byte-for-byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dead_lock_holder_is_reclaimed_and_the_run_persists() {
    let dir = tmpdir("stale");
    let cache = dir.join("cache.jsonl");

    // A real spawned-then-SIGKILL'd holder: its pid provably belonged
    // to a live process when the lock was written, and is dead now.
    let mut holder = Command::new("sleep")
        .arg("30")
        .spawn()
        .expect("spawn sleep holder");
    let lock_path = {
        let mut os = cache.as_os_str().to_owned();
        os.push(".lock");
        PathBuf::from(os)
    };
    std::fs::write(&lock_path, format!("{}\n", holder.id())).unwrap();
    holder.kill().expect("SIGKILL the holder");
    holder.wait().expect("reap the holder");

    let trace = dir.join("trace.jsonl");
    let out = run_ok(
        repro()
            .arg("--cache")
            .arg(&cache)
            .arg("--trace")
            .arg(&trace)
            .arg("table2"),
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "a dead holder must not fail the run\n{stderr}"
    );
    assert!(
        !stderr.contains("read-only"),
        "a dead holder must never degrade a later run to read-only\n{stderr}"
    );
    assert!(
        cache.exists(),
        "the reclaimed run must persist the cache file read-write"
    );
    let loaded = subvt_engine::Cache::new();
    assert!(loaded.load_jsonl(&cache).unwrap() > 0);
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(
        trace_text.contains("\"name\":\"cache.cache.lock_reclaimed\""),
        "the reclaim must be counted in the trace:\n{trace_text}"
    );
    // The reclaimer holds the lock for its run and releases it cleanly.
    assert!(!lock_path.exists(), "lock released after the run");

    std::fs::remove_dir_all(&dir).ok();
}
