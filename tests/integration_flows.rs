//! Cross-crate integration: the scaling flows (subvt-core) driving the
//! device physics (subvt-physics) and the circuit analyses
//! (subvt-circuits), end to end — the paper's full pipeline.

use subvt_circuits::chain::InverterChain;
use subvt_circuits::delay::analytic_fo1_delay;
use subvt_circuits::inverter::Inverter;
use subvt_circuits::snm::noise_margins;
use subvt_core::metrics::{delay_factor_fixed_ioff, energy_factor};
use subvt_core::strategy::ScalingStrategy;
use subvt_core::{SubVthStrategy, SuperVthStrategy, TechNode};
use subvt_units::Volts;

fn designs() -> (Vec<subvt_core::NodeDesign>, Vec<subvt_core::NodeDesign>) {
    let sup = SuperVthStrategy::default()
        .design_all()
        .expect("super-Vth flow");
    let sub = SubVthStrategy::default()
        .design_all()
        .expect("sub-Vth flow");
    (sup, sub)
}

#[test]
fn paper_headline_snm_advantage_at_32nm() {
    // Paper Fig. 10: the proposed strategy's inverter SNM at 250 mV is
    // ~19 % better at the 32 nm node.
    let (sup, sub) = designs();
    let v = Volts::new(0.25);
    let snm = |d: &subvt_core::NodeDesign| {
        let vtc = Inverter::new(d.cmos_pair()).vtc(v, 121).expect("vtc");
        noise_margins(&vtc).expect("restoring inverter").snm()
    };
    let snm_sup = snm(&sup[3]);
    let snm_sub = snm(&sub[3]);
    assert!(
        snm_sub > 1.05 * snm_sup,
        "sub-Vth SNM {snm_sub} must clearly beat super-Vth {snm_sup} at 32 nm"
    );
}

#[test]
fn paper_headline_ss_flat_vs_degrading() {
    let (sup, sub) = designs();
    let deg_sup = sup[3].nfet_chars.s_s.get() / sup[0].nfet_chars.s_s.get();
    let deg_sub = sub[3].nfet_chars.s_s.get() / sub[0].nfet_chars.s_s.get();
    // Paper Fig. 9: super-Vth S_S degrades ~11 %+ while sub-Vth stays
    // within a few mV/dec.
    assert!(deg_sup > 1.08, "super-Vth S_S degradation {deg_sup}");
    assert!(
        deg_sub < 1.06,
        "sub-Vth S_S must stay nearly flat: {deg_sub}"
    );
}

#[test]
fn paper_headline_energy_saving_at_32nm() {
    // Paper Fig. 12: ~23 % chain-energy saving at 32 nm at V_min.
    let (sup, sub) = designs();
    let e_sup = InverterChain::paper_chain(sup[3].cmos_pair())
        .minimum_energy_point()
        .energy
        .get();
    let e_sub = InverterChain::paper_chain(sub[3].cmos_pair())
        .minimum_energy_point()
        .energy
        .get();
    let ratio = e_sub / e_sup;
    assert!(
        ratio < 0.95,
        "sub-Vth strategy must save energy at 32 nm: ratio {ratio}"
    );
}

#[test]
fn paper_headline_vmin_flat_under_subvth() {
    let (sup, sub) = designs();
    let vmin = |d: &subvt_core::NodeDesign| {
        InverterChain::paper_chain(d.cmos_pair())
            .minimum_energy_point()
            .v_min
            .as_volts()
    };
    let spread_sup = vmin(&sup[3]) - vmin(&sup[0]);
    let spread_sub = (vmin(&sub[3]) - vmin(&sub[0])).abs();
    // Paper Fig. 6/12: V_min rises tens of mV under super-Vth scaling but
    // moves only ~10 mV under the proposed strategy.
    assert!(spread_sup > 0.02, "super-Vth V_min rise {spread_sup} V");
    assert!(spread_sub < 0.04, "sub-Vth V_min spread {spread_sub} V");
}

#[test]
fn subvth_delay_improves_where_supervth_degrades() {
    // Paper Fig. 11 (via the analytic engine for speed): at 250 mV the
    // sub-Vth strategy's delay falls monotonically; the super-Vth
    // strategy's delay rises from 90 nm onwards.
    let (sup, sub) = designs();
    let v = Volts::new(0.25);
    let d_sup: Vec<f64> = sup
        .iter()
        .map(|d| analytic_fo1_delay(&d.cmos_pair(), v).get())
        .collect();
    let d_sub: Vec<f64> = sub
        .iter()
        .map(|d| analytic_fo1_delay(&d.cmos_pair(), v).get())
        .collect();
    assert!(
        d_sub.windows(2).all(|w| w[1] < w[0]),
        "sub-Vth delay must fall: {d_sub:?}"
    );
    assert!(
        d_sup[3] > d_sup[0],
        "super-Vth 250 mV delay must degrade 90→32 nm: {d_sup:?}"
    );
}

#[test]
fn strategies_work_as_trait_objects() {
    let strategies: Vec<Box<dyn ScalingStrategy>> = vec![
        Box::new(SuperVthStrategy::default()),
        Box::new(SubVthStrategy::default()),
    ];
    for s in &strategies {
        let d = s.design_node(TechNode::N65).expect("node design");
        assert_eq!(d.node, TechNode::N65);
        assert!(d.nfet_chars.i_off.get() > 0.0);
        assert!(!s.name().is_empty());
    }
}

#[test]
fn table3_factors_fall_monotonically() {
    let sub = SubVthStrategy::default().design_all().expect("flow");
    let ef: Vec<f64> = sub.iter().map(|d| energy_factor(&d.nfet_chars)).collect();
    let df: Vec<f64> = sub
        .iter()
        .map(|d| delay_factor_fixed_ioff(&d.nfet_chars))
        .collect();
    assert!(ef.windows(2).all(|w| w[1] < w[0]), "energy factors {ef:?}");
    assert!(df.windows(2).all(|w| w[1] < w[0]), "delay factors {df:?}");
}

#[test]
fn designed_devices_are_circuit_ready() {
    // Every designed node must yield a working inverter with a sane VTC
    // at 250 mV (rail-to-rail, monotone).
    let (sup, sub) = designs();
    for d in sup.iter().chain(&sub) {
        let vtc = Inverter::new(d.cmos_pair())
            .vtc(Volts::new(0.25), 61)
            .expect("vtc");
        assert!(vtc.v_out[0] > 0.24, "{}: high output rail", d.node);
        assert!(vtc.v_out[60] < 0.01, "{}: low output rail", d.node);
        assert!(
            vtc.v_out.windows(2).all(|w| w[1] <= w[0] + 1e-6),
            "{}: monotone VTC",
            d.node
        );
    }
}
