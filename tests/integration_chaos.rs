//! Chaos suite for the fault-tolerant execution layer: drives the
//! `repro` binary under `SUBVT_FAULTS` fault-injection plans and asserts
//! the tentpole guarantee — every injected fault is either recovered
//! transparently (byte-identical output) or reported as a structured
//! failure in the manifest, and a subsequent clean run is unaffected.

use std::path::PathBuf;
use std::process::{Command, Output};

use subvt_exp::tracefmt::{self, Json};
use subvt_exp::ALL_EXPERIMENTS;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("repro binary spawns");
    assert!(
        out.status.code().is_some(),
        "repro must exit, not die on a signal"
    );
    out
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("subvt-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_manifest(path: &PathBuf) -> Json {
    let text = std::fs::read_to_string(path).expect("manifest written");
    tracefmt::parse_json(text.trim()).expect("manifest is valid JSON")
}

#[test]
fn injected_panics_are_reported_and_the_sweep_completes() {
    let dir = tmpdir("panics");
    let manifest_path = dir.join("m.json");
    let out = run_ok(
        repro()
            .env("SUBVT_FAULTS", "seed=1,panic=0.7")
            .arg("--keep-going")
            .arg("--manifest")
            .arg(&manifest_path)
            .arg("all"),
    );

    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    let manifest = read_manifest(&manifest_path);
    assert_eq!(manifest.get("v").unwrap().as_u64(), Some(2));

    let failures = manifest.get("failures").unwrap().as_arr().unwrap();
    assert!(
        !failures.is_empty(),
        "panic=0.7 over {} experiments must fell at least one",
        ALL_EXPERIMENTS.len()
    );
    // Every reported failure is a registered experiment with the
    // injected panic's message; every failure printed a FAILED line.
    for f in failures {
        let id = f.get("id").unwrap().as_str().unwrap();
        assert!(ALL_EXPERIMENTS.contains(&id), "unknown failed id {id}");
        let message = f.get("message").unwrap().as_str().unwrap();
        assert!(
            message.contains("fault-injected job panic"),
            "unexpected failure message: {message}"
        );
        assert!(stderr.contains(&format!("FAILED {id}")));
    }
    // The sweep is total: rendered tables + failures = all experiments.
    let rendered = stdout.lines().filter(|l| l.starts_with("## ")).count();
    assert_eq!(rendered + failures.len(), ALL_EXPERIMENTS.len());
    // Nonzero exit, but only after the full sweep.
    assert_ne!(out.status.code(), Some(0));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_free_keep_going_run_is_byte_identical_and_exits_zero() {
    let plain = run_ok(repro().arg("all"));
    let kept = run_ok(repro().arg("--keep-going").arg("all"));
    assert_eq!(plain.status.code(), Some(0));
    assert_eq!(kept.status.code(), Some(0));
    assert_eq!(
        plain.stdout, kept.stdout,
        "--keep-going must not perturb fault-free output"
    );
}

#[test]
fn injected_divergence_recovers_with_byte_identical_output() {
    let dir = tmpdir("diverge");
    let manifest_path = dir.join("m.json");
    let clean = run_ok(repro().args(["--circuit-backend", "spice", "fig4"]));
    assert_eq!(clean.status.code(), Some(0));

    let chaos = run_ok(
        repro()
            .env("SUBVT_FAULTS", "seed=5,diverge=1.0")
            .args(["--circuit-backend", "spice", "--keep-going"])
            .arg("--manifest")
            .arg(&manifest_path)
            .arg("fig4"),
    );
    assert_eq!(chaos.status.code(), Some(0), "retry rung must recover");
    assert_eq!(
        clean.stdout, chaos.stdout,
        "recovered solves must be bit-for-bit identical"
    );

    let manifest = read_manifest(&manifest_path);
    let recoveries = manifest.get("recoveries").unwrap().as_arr().unwrap();
    assert!(
        recoveries
            .iter()
            .any(|r| r.get("site").unwrap().as_str() == Some("spice.dc")
                && r.get("recovered").unwrap().as_bool() == Some(true)),
        "manifest must record the spice.dc recovery"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_cache_is_quarantined_and_warm_run_matches_cold() {
    let dir = tmpdir("corrupt");
    let cache = dir.join("cache.jsonl");

    // Baseline: cold, fault-free.
    let cold = run_ok(repro().args(["table2", "fig2"]));
    assert_eq!(cold.status.code(), Some(0));

    // Chaos run persists the cache through the corruption point.
    let chaos = run_ok(
        repro()
            .env("SUBVT_FAULTS", "seed=3,corrupt=1.0")
            .arg("--cache")
            .arg(&cache)
            .args(["table2", "fig2"]),
    );
    assert_eq!(chaos.status.code(), Some(0));
    assert_eq!(cold.stdout, chaos.stdout);

    // Clean warm run: torn lines land in the quarantine sidecar, the
    // results are recomputed, and the output is byte-identical.
    let warm = run_ok(repro().arg("--cache").arg(&cache).args(["table2", "fig2"]));
    assert_eq!(warm.status.code(), Some(0));
    assert_eq!(
        cold.stdout, warm.stdout,
        "warm run over a corrupted cache must match the cold run"
    );
    let stderr = String::from_utf8(warm.stderr).unwrap();
    assert!(
        stderr.contains("quarantined"),
        "expected a quarantine notice, got: {stderr}"
    );
    let quarantine = subvt_engine::cache::quarantine_path(&cache);
    assert!(quarantine.exists(), "quarantine sidecar must exist");

    // The rewritten cache is clean: a second warm run quarantines nothing.
    let warm2 = run_ok(repro().arg("--cache").arg(&cache).args(["table2", "fig2"]));
    let stderr2 = String::from_utf8(warm2.stderr).unwrap();
    assert!(
        !stderr2.contains("quarantined"),
        "cache must be compacted clean on save, got: {stderr2}"
    );
    assert_eq!(cold.stdout, warm2.stdout);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_manifest_round_trips_through_trace_report() {
    let dir = tmpdir("report");
    let manifest_path = dir.join("m.json");
    let chaos = run_ok(
        repro()
            .env("SUBVT_FAULTS", "seed=1,panic=0.7")
            .arg("--keep-going")
            .arg("--manifest")
            .arg(&manifest_path)
            .arg("all"),
    );
    let manifest = read_manifest(&manifest_path);
    let failures = manifest.get("failures").unwrap().as_arr().unwrap();
    assert!(!failures.is_empty());
    drop(chaos);

    let report = run_ok(repro().arg("trace-report").arg(&manifest_path));
    assert_eq!(report.status.code(), Some(0));
    let text = String::from_utf8(report.stdout).unwrap();
    assert!(text.contains("manifest v2"), "{text}");
    assert!(
        text.contains(&format!("failures: {}", failures.len())),
        "{text}"
    );
    for f in failures {
        let id = f.get("id").unwrap().as_str().unwrap();
        assert!(text.contains(id), "trace-report must list failed id {id}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_lock_contention_persists_through_segment() {
    let dir = tmpdir("lock");
    let cache = dir.join("cache.jsonl");
    // This test process is a *live* primary-lock holder, so the child
    // run cannot reclaim the lock — it must fall back to a leased
    // segment under <cache>.d/ and still persist its results there.
    let _lock = subvt_engine::cache::CacheLock::acquire(&cache)
        .unwrap()
        .expect("lock is free");

    let trace = dir.join("trace.jsonl");
    let out = run_ok(
        repro()
            .arg("--cache")
            .arg(&cache)
            .arg("--trace")
            .arg(&trace)
            .arg("table2"),
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "a held lock must not fail the run"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("held by another process"), "{stderr}");
    assert!(stderr.contains("persisting to segment"), "{stderr}");
    assert!(
        !cache.exists(),
        "a run without the primary lock must not write the canonical file"
    );
    let seg_dir = subvt_engine::cache::seg::segment_dir(&cache);
    let segments: Vec<_> = std::fs::read_dir(&seg_dir)
        .expect("segment dir created")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".jsonl"))
        })
        .collect();
    assert_eq!(segments.len(), 1, "the run must leave one sealed segment");
    let loaded = subvt_engine::Cache::new();
    assert!(
        loaded.load_jsonl(&segments[0]).unwrap() > 0,
        "the segment must hold the run's computed entries"
    );
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(
        trace_text.contains("\"name\":\"cache.cache.readonly\",\"value\":0"),
        "segment fallback must clear the readonly gauge (not read-only!)"
    );

    // Once the primary holder is gone, the next primary run adopts the
    // sealed segment and compacts it into the canonical file.
    drop(_lock);
    let report = subvt_engine::cache::seg::compact(&cache).unwrap();
    assert_eq!(report.segments_merged, 1);
    assert!(report.written > 0);
    assert!(cache.exists(), "compaction writes the canonical file");
    assert!(!seg_dir.exists(), "compaction retires the segment dir");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deterministic_plans_inject_identical_fault_sets() {
    let run_with = |spec: &str| {
        let out = run_ok(
            repro()
                .env("SUBVT_FAULTS", spec)
                .arg("--keep-going")
                .arg("all"),
        );
        String::from_utf8(out.stderr).unwrap()
    };
    let a = run_with("seed=42,panic=0.5");
    let b = run_with("seed=42,panic=0.5");
    let failed = |s: &str| {
        s.lines()
            .filter(|l| l.starts_with("FAILED "))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    assert_eq!(failed(&a), failed(&b), "same plan must fail the same ids");
    let c = run_with("seed=43,panic=0.5");
    // Different seed, same probability: almost surely a different set;
    // at minimum the harness must not crash. (Avoid asserting inequality
    // — 14 Bernoulli draws can collide across seeds.)
    let _ = failed(&c);
}
