//! Round-trips the engine's trace sinks through the `subvt_exp::tracefmt`
//! parser against the *live* global tracer: real experiments run on the
//! real pool, then both sink formats must re-parse and satisfy the
//! structural invariants (valid JSON, acyclic span tree, resolvable
//! parents, histogram bucket counts summing to the sample count).
//!
//! These tests share one process-global tracer and may interleave, so
//! assertions are monotone ("at least", "contains") rather than exact.

use subvt_exp::tracefmt::{self, TraceFile};
use subvt_exp::{report, run};

fn global_jsonl() -> TraceFile {
    let mut buf = Vec::new();
    subvt_engine::trace::global()
        .write_jsonl(&mut buf)
        .expect("in-memory write");
    tracefmt::parse_jsonl(std::str::from_utf8(&buf).expect("utf8")).expect("jsonl parses")
}

#[test]
fn jsonl_sink_round_trips_with_valid_structure() {
    run("table1").expect("table1 runs");
    run("fig7").expect("fig7 runs");
    let trace = global_jsonl();
    assert_eq!(trace.v, subvt_engine::trace::SCHEMA_VERSION);
    tracefmt::validate(&trace).expect("invariants hold");
    assert!(
        trace.spans.iter().any(|s| s.name == "experiment.table1"),
        "experiment span missing: {:?}",
        trace.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
}

#[test]
fn worker_lanes_are_small_stable_integers() {
    // Spans opened inside pool jobs must carry the worker's lane index
    // (1-based; 0 is reserved for non-pool threads), not a thread id.
    let pool = subvt_engine::global();
    pool.map((0..8u32).collect::<Vec<_>>(), |i| {
        let _span = subvt_engine::trace::span("it.lane_probe").attr("i", i);
        i
    });
    let trace = global_jsonl();
    let lanes: Vec<u32> = trace
        .spans
        .iter()
        .filter(|s| s.name == "it.lane_probe")
        .map(|s| s.worker)
        .collect();
    assert!(!lanes.is_empty());
    for lane in lanes {
        assert!(
            lane >= 1 && lane <= pool.workers() as u32,
            "lane {lane} outside 1..={}",
            pool.workers()
        );
    }
}

#[test]
fn cache_stats_flush_into_every_drained_trace() {
    // Satellite: `Cache::stats()` must reach the tracer automatically on
    // drain — no explicit flush call at any call site.
    let cache = subvt_engine::global_cache();
    let _: f64 = cache.get_or_compute("it.flush", 1, || 42.0);
    let _: f64 = cache.get_or_compute("it.flush", 1, || unreachable!("hit"));
    let trace = global_jsonl();
    assert!(*trace.counters.get("cache.it.flush.hit").unwrap_or(&0) >= 1);
    assert!(*trace.counters.get("cache.it.flush.miss").unwrap_or(&0) >= 1);
    let lookups = trace
        .hists
        .get("cache.it.flush.lookup_us")
        .expect("lookup latency histogram");
    assert!(lookups.count >= 2);
}

#[test]
fn chrome_sink_round_trips_with_required_fields() {
    run("fig8").expect("fig8 runs");
    let mut buf = Vec::new();
    subvt_engine::trace::global()
        .write_chrome(&mut buf)
        .expect("in-memory write");
    // parse_chrome rejects any event missing pid/tid/ts/dur/name/ph.
    let events = tracefmt::parse_chrome(std::str::from_utf8(&buf).expect("utf8"))
        .expect("chrome trace parses with required fields everywhere");
    assert!(events
        .iter()
        .any(|e| e.ph == "M" && e.name == "thread_name"));
    let trace = tracefmt::trace_from_chrome(&events);
    tracefmt::validate(&trace).expect("invariants hold");
    assert!(trace.spans.iter().any(|s| s.name == "experiment.fig8"));
}

#[test]
fn trace_report_renders_the_global_trace() {
    run("table1").expect("table1 runs");
    let trace = global_jsonl();
    let rendered = tracefmt::render_report(&trace);
    assert!(rendered.contains("experiment.table1"), "{rendered}");
    assert!(rendered.contains("counter"), "{rendered}");
}

#[test]
fn manifest_describes_the_run() {
    run("fig7").expect("fig7 runs");
    let mut buf = Vec::new();
    report::write_manifest(&mut buf, &[]).expect("in-memory write");
    let manifest = tracefmt::parse_json(std::str::from_utf8(&buf).expect("utf8").trim())
        .expect("manifest is one valid JSON object");
    assert_eq!(manifest.get("v").unwrap().as_u64(), Some(2));
    assert_eq!(
        manifest.get("backend").unwrap().as_str().map(str::to_owned),
        Some(subvt_exp::backend::model().cache_id())
    );
    assert_eq!(
        manifest.get("jobs").unwrap().as_u64(),
        Some(subvt_engine::global().workers() as u64)
    );
    let experiments = manifest.get("experiments").unwrap().as_arr().unwrap();
    assert!(experiments
        .iter()
        .any(|e| e.get("id").unwrap().as_str() == Some("fig7")));
    assert!(manifest.get("cache").unwrap().get("hits").is_some());
    assert!(manifest.get("solvers").unwrap().get("gummel").is_some());
}
