//! Validates the compact device model (subvt-physics) against the 2-D
//! drift-diffusion solver (subvt-tcad) — the workspace's MEDICI
//! substitute — on the paper's reference device and on parameter trends.
//!
//! Known, documented offsets (EXPERIMENTS.md): the literal 2-D structure
//! carries roughly two decades more subthreshold current than the
//! calibrated compact model (lower constant-current V_th), while the
//! swing and DIBL agree closely.

use subvt_physics::device::DeviceParams;
use subvt_tcad::device::{MeshDensity, Mosfet2d};
use subvt_tcad::extract::{id_vg, sweep_and_extract};
use subvt_tcad::gummel::DeviceSimulator;
use subvt_units::{Nanometers, PerCubicCentimeter};

#[test]
fn swing_agrees_with_compact_model() {
    let params = DeviceParams::reference_90nm_nfet();
    let compact = params.characterize();
    let ext = sweep_and_extract(&params, MeshDensity::Coarse).expect("2-D sweep");
    let diff = (ext.s_s - compact.s_s.get()).abs();
    assert!(
        diff < 12.0,
        "S_S: 2-D {:.1} vs compact {:.1} mV/dec",
        ext.s_s,
        compact.s_s.get()
    );
}

#[test]
fn dibl_agrees_within_factor_two() {
    let params = DeviceParams::reference_90nm_nfet();
    let compact = params.characterize();
    let ext = sweep_and_extract(&params, MeshDensity::Coarse).expect("2-D sweep");
    let ratio = ext.dibl / compact.dibl;
    assert!(
        (0.5..2.0).contains(&ratio),
        "DIBL: 2-D {} vs compact {} (ratio {ratio})",
        ext.dibl,
        compact.dibl
    );
}

#[test]
fn off_current_within_three_decades() {
    let params = DeviceParams::reference_90nm_nfet();
    let compact = params.characterize();
    let ext = sweep_and_extract(&params, MeshDensity::Coarse).expect("2-D sweep");
    let decades = (ext.i_off / compact.i_off.get()).log10().abs();
    assert!(
        decades < 3.0,
        "I_off: 2-D {:e} vs compact {:e} ({decades:.1} decades apart)",
        ext.i_off,
        compact.i_off.get()
    );
}

#[test]
fn both_engines_agree_halo_raises_threshold() {
    // Trend validation: raising the halo peak must lower leakage in both
    // engines (the mechanism behind the paper's Fig. 1(c) flow).
    let base = DeviceParams::reference_90nm_nfet();
    let mut heavy = base;
    heavy.n_p_halo = PerCubicCentimeter::new(2.0 * base.n_p_halo.get());

    let compact_drop = heavy.characterize().i_off.get() / base.characterize().i_off.get();
    assert!(compact_drop < 1.0, "compact: halo must cut leakage");

    let ioff_2d = |p: &DeviceParams| {
        let dev = Mosfet2d::build(p, MeshDensity::Coarse);
        let mut sim = DeviceSimulator::new(dev).expect("equilibrium");
        sim.set_bias(0.0, p.v_dd.as_volts()).expect("bias");
        sim.drain_current()
    };
    let tcad_drop = ioff_2d(&heavy) / ioff_2d(&base);
    assert!(
        tcad_drop < 1.0,
        "2-D: halo must cut leakage (ratio {tcad_drop})"
    );
}

#[test]
fn both_engines_agree_shorter_channel_degrades_swing() {
    // The paper's core mechanism, checked in both engines: shrinking
    // L_poly at fixed T_ox degrades S_S.
    let base = DeviceParams::reference_90nm_nfet();
    let mut short = base;
    short.geometry.l_poly = Nanometers::new(45.0);

    let ss_c_base = base.characterize().s_s.get();
    let ss_c_short = short.characterize().s_s.get();
    assert!(ss_c_short > ss_c_base, "compact trend");

    let ss_2d = |p: &DeviceParams| {
        let dev = Mosfet2d::build(p, MeshDensity::Coarse);
        let mut sim = DeviceSimulator::new(dev).expect("equilibrium");
        let curve = id_vg(&mut sim, 0.6, 0.5, 0.05).expect("sweep");
        let i0 = curve.i_d[0];
        curve
            .swing_between(10.0 * i0, 1.0e3 * i0)
            .expect("swing window")
    };
    let ss_t_base = ss_2d(&base);
    let ss_t_short = ss_2d(&short);
    assert!(
        ss_t_short > ss_t_base,
        "2-D trend: {ss_t_short} vs {ss_t_base} mV/dec"
    );
}

#[test]
fn subvth_style_device_shows_better_swing_in_2d() {
    // A longer-channel, lighter-halo device (the paper's §3 recipe)
    // must show a steeper subthreshold slope in the 2-D engine too.
    let base = DeviceParams::reference_90nm_nfet();
    let mut relaxed = base;
    relaxed.geometry.l_poly = Nanometers::new(95.0);
    relaxed.n_p_halo = PerCubicCentimeter::new(0.5e18);

    let ss = |p: &DeviceParams| {
        let dev = Mosfet2d::build(p, MeshDensity::Coarse);
        let mut sim = DeviceSimulator::new(dev).expect("equilibrium");
        let curve = id_vg(&mut sim, 0.6, 0.5, 0.05).expect("sweep");
        let i0 = curve.i_d[0];
        curve
            .swing_between(10.0 * i0, 1.0e3 * i0)
            .expect("swing window")
    };
    let ss_base = ss(&base);
    let ss_relaxed = ss(&relaxed);
    assert!(
        ss_relaxed < ss_base,
        "longer channel must improve 2-D swing: {ss_relaxed} vs {ss_base}"
    );
}
