//! End-to-end checks on the experiment harness: every table and figure
//! runs, renders, and reproduces the paper's headline shapes.

use subvt_exp::{run, run_all, StudyContext, ALL_EXPERIMENTS};

#[test]
fn every_registered_experiment_renders() {
    // Warm the shared design cache once, then run everything.
    let _ = StudyContext::cached();
    let tables = run_all();
    assert_eq!(tables.len(), ALL_EXPERIMENTS.len());
    for t in &tables {
        assert!(!t.rows.is_empty(), "{} has no rows", t.title);
        let text = t.to_text();
        assert!(text.starts_with("## "), "{} text render", t.title);
        let csv = t.to_csv();
        assert_eq!(
            csv.lines().count(),
            t.rows.len() + 1,
            "{} csv render",
            t.title
        );
    }
}

#[test]
fn table2_reproduces_paper_inputs_exactly() {
    let t = run("table2").expect("table2");
    // Roadmap columns are the paper's stated inputs and must match
    // exactly: L_poly 65/46/32/22 nm, T_ox 2.10/1.89/1.70/1.53 nm,
    // V_dd 1.2/1.1/1.0/0.9.
    let l: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
    assert_eq!(l, vec![65.0, 46.0, 32.0, 22.0]);
    let tox: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
    for (got, want) in tox.iter().zip([2.10, 1.89, 1.70, 1.53]) {
        assert!((got - want).abs() < 0.011);
    }
    let vdd: Vec<f64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
    assert_eq!(vdd, vec![1.2, 1.1, 1.0, 0.9]);
}

#[test]
fn table2_doping_lands_near_paper_values() {
    // Paper Table 2: N_sub 1.52/1.97/2.52/3.31e18. Our derived values
    // should land within ~50 % (independent substrate calibration).
    let t = run("table2").expect("table2");
    let want = [1.52e18, 1.97e18, 2.52e18, 3.31e18];
    for (row, want) in t.rows.iter().zip(want) {
        let got: f64 = row[3].parse().unwrap();
        assert!(
            (got / want - 1.0).abs() < 0.5,
            "N_sub {got:e} vs paper {want:e}"
        );
    }
}

#[test]
fn table3_gate_lengths_exceed_minimum_and_shrink_slowly() {
    // Paper Table 3: L_poly 95/75/60/45 — longer than the super-Vth
    // 65/46/32/22 and scaling ~20-25 %/generation.
    let t = run("table3").expect("table3");
    let l: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
    let min = [65.0, 46.0, 32.0, 22.0];
    for (got, min) in l.iter().zip(min) {
        assert!(
            *got > min,
            "L_poly {got} must exceed the node minimum {min}"
        );
    }
    for w in l.windows(2) {
        let shrink = 1.0 - w[1] / w[0];
        assert!(
            (0.05..0.35).contains(&shrink),
            "per-generation shrink {shrink} out of the paper's slow-scaling range"
        );
    }
}

#[test]
fn fig2_and_fig10_shapes() {
    let fig2 = run("fig2").expect("fig2");
    let ss: Vec<f64> = fig2.rows.iter().map(|r| r[1].parse().unwrap()).collect();
    assert!(
        ss.windows(2).all(|w| w[1] > w[0]),
        "S_S must degrade: {ss:?}"
    );

    let fig10 = run("fig10").expect("fig10");
    let ratio: f64 = fig10.rows[3][3].parse().unwrap();
    assert!(ratio > 1.05, "fig10 32 nm SNM ratio {ratio}");
}

#[test]
fn fig12_energy_ratio_close_to_paper() {
    // Paper: 23 % saving at 32 nm. Accept 10–40 %.
    let t = run("fig12").expect("fig12");
    let ratio: f64 = t.rows[3][5].parse().unwrap();
    assert!(
        (0.60..0.90).contains(&ratio),
        "32 nm energy ratio {ratio} (paper: 0.77)"
    );
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(run("table9").is_none());
    assert!(run("").is_none());
}
