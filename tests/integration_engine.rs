//! Cross-crate engine guarantees: parallel experiment dispatch is
//! byte-identical to a serial loop, and the design cache round-trips
//! through its on-disk JSON-lines form without recomputation.

use subvt_engine::Blob;
use subvt_exp::codec::DesignSet;
use subvt_exp::{run, run_all, StudyContext, ALL_EXPERIMENTS};

#[test]
fn parallel_run_all_matches_serial_byte_for_byte() {
    let serial: Vec<String> = ALL_EXPERIMENTS
        .iter()
        .map(|id| run(id).expect("registered experiment").to_csv())
        .collect();
    let parallel: Vec<String> = run_all().iter().map(|t| t.to_csv()).collect();
    assert_eq!(serial.len(), parallel.len());
    for (id, (s, p)) in ALL_EXPERIMENTS.iter().zip(serial.iter().zip(&parallel)) {
        assert_eq!(
            s, p,
            "experiment {id} differs between serial and parallel runs"
        );
    }
}

#[test]
fn design_cache_round_trips_through_disk_without_recompute() {
    let ctx = StudyContext::cached().clone();
    let cache = subvt_engine::global_cache();

    let dir = std::env::temp_dir().join(format!("subvt-engine-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.jsonl");
    let saved = cache.save_jsonl(&path).unwrap();
    assert!(
        saved >= 2,
        "both design flows must be persisted, got {saved}"
    );

    // A fresh cache loaded from disk serves the flows as pure hits.
    let fresh = subvt_engine::Cache::new();
    assert_eq!(fresh.load_jsonl(&path).unwrap(), saved);
    let misses_before = fresh.stats().misses;
    let recalled: StudyContext = {
        let sup = fresh.get_or_compute("design", design_key("supervth"), || {
            panic!("supervth flow must come from the loaded cache")
        });
        let sub = fresh.get_or_compute("design", design_key("subvth"), || {
            panic!("subvth flow must come from the loaded cache")
        });
        let (sup, sub): (DesignSet, DesignSet) = (sup, sub);
        StudyContext {
            supervth: sup.0,
            subvth: sub.0,
        }
    };
    assert_eq!(recalled, ctx, "disk round-trip must be bit-exact");
    assert_eq!(fresh.stats().misses, misses_before, "no recompute allowed");

    std::fs::remove_dir_all(&dir).ok();
}

/// Mirrors the `design` namespace keys of `subvt_exp::context` for the
/// default strategies (the flows' own parameters, the device-model
/// backend's cache id, the operating temperature, tag `design.v1`).
fn design_key(flow: &str) -> u64 {
    let backend = subvt_model::analytic().cache_id();
    let room = subvt_units::Temperature::room().as_kelvin();
    match flow {
        "supervth" => subvt_engine::KeyBuilder::new("design.v1")
            .str("supervth")
            .str(&backend)
            .f64(0.10)
            .f64(100.0)
            .f64(1.25)
            .f64(room)
            .finish(),
        "subvth" => subvt_engine::KeyBuilder::new("design.v1")
            .str("subvth")
            .str(&backend)
            .f64(subvt_units::AmpsPerMicron::from_picoamps(100.0).get())
            .f64(room)
            .finish(),
        _ => unreachable!(),
    }
}

#[test]
fn design_set_blob_matches_cache_record() {
    // The cached record must decode with the public codec — guards
    // against silent layout drift between codec and cache.
    let ctx = StudyContext::cached();
    let record = subvt_engine::global_cache()
        .peek("design", design_key("subvth"))
        .expect("subvth flow cached after StudyContext::cached()");
    let decoded = DesignSet::decode(&record).expect("record must decode");
    assert_eq!(decoded.0, ctx.subvth);
}
