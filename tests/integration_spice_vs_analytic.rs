//! Validates the MNA simulator (subvt-spice) against the paper's
//! closed-form circuit expressions on the same devices.

use subvt_circuits::chain::InverterChain;
use subvt_circuits::delay::{analytic_fo1_delay, spice_fo1_delay};
use subvt_circuits::inverter::{analytic_vtc, CmosPair, Inverter};
use subvt_circuits::snm::noise_margins;
use subvt_physics::device::DeviceParams;
use subvt_spice::measure::supply_energy;
use subvt_spice::netlist::{Netlist, Waveform};
use subvt_spice::transient::{transient, Integrator, TransientSpec};
use subvt_units::Volts;

fn pair() -> CmosPair {
    CmosPair::balanced(DeviceParams::reference_90nm_nfet())
}

#[test]
fn spice_vtc_matches_paper_eq3() {
    // The simulated VTC must track the paper's Eq. 3(b) closed form in
    // the subthreshold regime.
    let p = pair().at_supply(Volts::new(0.25));
    let spice = Inverter::new(p).vtc(Volts::new(0.25), 81).expect("vtc");
    let closed = analytic_vtc(&p, Volts::new(0.25), 81);
    let max_dev = spice
        .v_out
        .iter()
        .zip(&closed.v_out)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_dev < 0.05, "max VTC deviation {max_dev} V");
}

#[test]
fn spice_delay_tracks_analytic_over_supply() {
    // Eq. 4/Eq. 5 say delay is exponential in V_dd below threshold; the
    // transient-measured delay must track the analytic estimate within a
    // constant factor across supplies.
    let p = pair();
    for v in [0.22, 0.25, 0.30] {
        let v = Volts::new(v);
        let spice = spice_fo1_delay(&p, v, 700).expect("delay").average().get();
        let analytic = analytic_fo1_delay(&p, v).get();
        let ratio = spice / analytic;
        assert!(
            (0.3..3.0).contains(&ratio),
            "V_dd {v}: spice {spice:e} vs analytic {analytic:e}"
        );
    }
}

#[test]
fn measured_switching_energy_close_to_cv2() {
    // Drive a single inverter with one slow full swing and integrate the
    // supply charge: E ≈ C_load·V_dd² for one low-to-high output event.
    let p = pair().at_supply(Volts::new(0.3));
    let inv = Inverter::new(p);
    let vdd = 0.3;
    let tp = analytic_fo1_delay(&p, Volts::new(vdd)).get();

    let mut net = Netlist::new();
    let vdd_node = net.node("vdd");
    let a = net.node("a");
    let b = net.node("b");
    net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(vdd));
    net.vsource(
        "VIN",
        a,
        Netlist::GROUND,
        Waveform::Pulse {
            v0: vdd, // input starts high → output low → one discharge…
            v1: 0.0,
            delay: 5.0 * tp,
            rise: tp,
            fall: tp,
            width: 1.0,
            period: f64::INFINITY,
        },
    );
    inv.wire(&mut net, "X1", a, b, vdd_node);

    let res = transient(
        &net,
        TransientSpec::with_steps(40.0 * tp, 1200, Integrator::Trapezoidal),
    )
    .expect("transient");
    let e = supply_energy(&res, 0, vdd_node);
    // Only the output node hangs on the supply-paid path (the input cap
    // is charged by the input source): E_supply ≈ C_out·V_dd².
    let want = p.output_capacitance() * vdd * vdd;
    let ratio = e / want;
    assert!(
        (0.3..2.0).contains(&ratio),
        "switching energy {e:e} vs C·V² {want:e} (ratio {ratio})"
    );
}

#[test]
fn chain_energy_model_consistent_with_spice_leakage() {
    // The analytic chain model's leakage term uses I_off·V_dd; check the
    // DC supply current of an idle inverter matches the model's leakage
    // estimate within a factor of a few.
    let p = pair().at_supply(Volts::new(0.25));
    let inv = Inverter::new(p);
    let mut net = Netlist::new();
    let vdd_node = net.node("vdd");
    let a = net.node("a");
    let b = net.node("b");
    net.vsource("VDD", vdd_node, Netlist::GROUND, Waveform::Dc(0.25));
    net.vsource("VIN", a, Netlist::GROUND, Waveform::Dc(0.0));
    inv.wire(&mut net, "X1", a, b, vdd_node);
    let sol = subvt_spice::dc_operating_point(&net).expect("op");
    let i_supply = -sol.branch_currents[0];
    let i_model = p.leakage_current();
    let ratio = i_supply / i_model;
    assert!(
        (0.2..5.0).contains(&ratio),
        "DC leakage {i_supply:e} vs model {i_model:e}"
    );
}

#[test]
fn minimum_energy_point_is_stable_across_engines() {
    // V_min from the analytic sweep must coincide with the golden-section
    // search result (sanity of the optimizer itself).
    let chain = InverterChain::paper_chain(pair());
    let mep = chain.minimum_energy_point();
    let sweep = chain.energy_sweep(Volts::new(0.1), Volts::new(0.6), 201);
    let best = sweep
        .iter()
        .min_by(|a, b| a.total().get().partial_cmp(&b.total().get()).unwrap())
        .expect("non-empty sweep");
    assert!(
        (best.v_dd.as_volts() - mep.v_min.as_volts()).abs() < 0.01,
        "sweep minimum {} vs golden-section {}",
        best.v_dd.as_volts(),
        mep.v_min.as_volts()
    );
}

/// Sums hits and misses across the `spice.*` cache namespaces. Only the
/// parity test below touches those namespaces in this process, so the
/// deltas are race-free even with tests running in parallel.
fn spice_cache_totals() -> (u64, u64) {
    let stats = subvt_engine::global_cache().stats();
    stats
        .by_namespace
        .iter()
        .filter(|(ns, _, _)| ns.starts_with("spice."))
        .fold((0, 0), |(h, m), (_, hits, misses)| (h + hits, m + misses))
}

/// Backend parity at every Table 2 node, then cache-reuse on a warm
/// rerun. One combined test: splitting it would race on the shared
/// global cache stats across parallel test threads.
#[test]
fn spice_backend_parity_and_warm_cache_reuse() {
    let analytic = subvt_circuits::analytic_circuit();
    let spice = subvt_circuits::spice_circuit();
    let ctx = subvt_exp::StudyContext::cached();
    let v = Volts::new(0.25);
    let pairs: Vec<CmosPair> = ctx.supervth.iter().map(subvt_exp::backend::pair).collect();

    for (d, p) in ctx.supervth.iter().zip(&pairs) {
        let node = d.node.name();

        // Both backends sweep the identical MNA deck for the VTC, so the
        // curves — and the SNM read off them — must agree to solver
        // precision.
        let vtc_a = analytic.vtc(p, v, 81).expect("analytic vtc");
        let vtc_s = spice.vtc(p, v, 81).expect("spice vtc");
        let max_dev = vtc_a
            .v_out
            .iter()
            .zip(&vtc_s.v_out)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-9, "{node}: VTC deviation {max_dev} V");
        let snm_a = noise_margins(&vtc_a).expect("margins").snm();
        let snm_s = noise_margins(&vtc_s).expect("margins").snm();
        assert!(
            (snm_a - snm_s).abs() < 1e-9,
            "{node}: SNM {snm_a} vs {snm_s}"
        );

        // Same FO1 fixture at different step counts (900 vs 1200): the
        // measured propagation delays must land within 10 %.
        let d_a = analytic.fo1_delay(p, v).expect("analytic fo1");
        let d_s = spice.fo1_delay(p, v).expect("spice fo1");
        let ratio = d_s.average().get() / d_a.average().get();
        assert!(
            (0.9..1.1).contains(&ratio),
            "{node}: FO1 delay ratio {ratio}"
        );

        // Chain energy: closed-form model vs supply-charge integration.
        // These are different estimators, so only order-of-magnitude
        // agreement is claimed (factor 3).
        let chain = InverterChain::paper_chain(*p);
        let e_a = analytic.chain_energy(&chain, v).expect("analytic energy");
        let e_s = spice.chain_energy(&chain, v).expect("spice energy");
        let ratio = e_s.total().get() / e_a.total().get();
        assert!(
            (1.0 / 3.0..3.0).contains(&ratio),
            "{node}: chain energy ratio {ratio}"
        );
    }

    // Warm rerun: every spice metric recomputed above must now be a pure
    // cache hit — zero new misses in the spice.* namespaces.
    let (hits_cold, misses_cold) = spice_cache_totals();
    for p in &pairs {
        spice.vtc(p, v, 81).expect("warm vtc");
        spice.fo1_delay(p, v).expect("warm fo1");
        spice
            .chain_energy(&InverterChain::paper_chain(*p), v)
            .expect("warm energy");
    }
    let (hits_warm, misses_warm) = spice_cache_totals();
    assert_eq!(
        misses_warm, misses_cold,
        "warm spice rerun must not miss the cache"
    );
    assert!(
        hits_warm >= hits_cold + 3 * pairs.len() as u64,
        "warm spice rerun should hit per metric: {hits_cold} -> {hits_warm}"
    );
}

#[test]
fn snm_definitions_rank_supplies_consistently() {
    // Gain-based (paper) and butterfly SNM must both rank supplies the
    // same way.
    let p = pair();
    let inv = Inverter::new(p);
    let snm_at = |v: f64| {
        let vtc = inv.vtc(Volts::new(v), 121).expect("vtc");
        let gain = noise_margins(&vtc).expect("margins").snm();
        let fly = subvt_circuits::butterfly_snm(&vtc, &vtc).expect("butterfly");
        (gain, fly)
    };
    let (g1, f1) = snm_at(0.20);
    let (g2, f2) = snm_at(0.30);
    assert!(g2 > g1 && f2 > f1);
}

#[test]
fn non_finite_netlist_parameters_surface_typed_errors() {
    use subvt_spice::mna::{dc_operating_point, SpiceError};

    // A parsed or programmatic deck carrying a NaN source value must be
    // rejected by validation before the solver sees it.
    let mut net = Netlist::new();
    let a = net.node("a");
    net.vsource("Vbad", a, Netlist::GROUND, Waveform::Dc(f64::NAN));
    net.resistor("R1", a, Netlist::GROUND, 1.0e3);
    match dc_operating_point(&net) {
        Err(SpiceError::InvalidNetlist { element, .. }) => assert_eq!(element, "Vbad"),
        other => panic!("expected InvalidNetlist, got {other:?}"),
    }

    // Same guard on the transient entry point, plus degenerate specs.
    let mut ok_net = Netlist::new();
    let b = ok_net.node("b");
    ok_net.vsource("V1", b, Netlist::GROUND, Waveform::Dc(1.0));
    ok_net.resistor("R1", b, Netlist::GROUND, 1.0e3);
    let bad_spec = TransientSpec {
        t_stop: 1.0e-6,
        dt: f64::NAN,
        method: Integrator::Trapezoidal,
    };
    assert!(matches!(
        transient(&ok_net, bad_spec),
        Err(SpiceError::InvalidTransientSpec { .. })
    ));

    let mut pwl_net = Netlist::new();
    let c = pwl_net.node("c");
    pwl_net.vsource(
        "Vpwl",
        c,
        Netlist::GROUND,
        Waveform::Pwl(vec![(0.0, 0.0), (1.0e-6, f64::INFINITY)]),
    );
    pwl_net.resistor("R1", c, Netlist::GROUND, 1.0e3);
    let spec = TransientSpec {
        t_stop: 1.0e-6,
        dt: 1.0e-8,
        method: Integrator::Trapezoidal,
    };
    assert!(matches!(
        transient(&pwl_net, spec),
        Err(SpiceError::InvalidNetlist { .. })
    ));
}
